"""Non-linear delay model lookup tables.

An :class:`NldmTable` is the Liberty ``lu_table``: values indexed by input
transition time (rows) and output load capacitance (columns), with bilinear
interpolation inside the characterised window and linear extrapolation
outside it (the same behaviour commercial STA engines implement).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.errors import LibraryError


@dataclass(frozen=True)
class NldmTable:
    """A 2-D lookup table over (input slew, output load)."""

    slews: np.ndarray      # ascending, seconds
    loads: np.ndarray      # ascending, farads
    values: np.ndarray     # shape (len(slews), len(loads))

    def __post_init__(self) -> None:
        slews = np.asarray(self.slews, dtype=float)
        loads = np.asarray(self.loads, dtype=float)
        values = np.asarray(self.values, dtype=float)
        object.__setattr__(self, "slews", slews)
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "values", values)
        if slews.ndim != 1 or loads.ndim != 1:
            raise LibraryError("NLDM index arrays must be 1-D")
        if values.shape != (len(slews), len(loads)):
            raise LibraryError(
                f"NLDM table shape {values.shape} does not match index sizes "
                f"({len(slews)}, {len(loads)})")
        if len(slews) < 2 or len(loads) < 2:
            raise LibraryError("NLDM tables need at least a 2x2 grid")
        if np.any(np.diff(slews) <= 0) or np.any(np.diff(loads) <= 0):
            raise LibraryError("NLDM index arrays must be strictly increasing")
        if not np.all(np.isfinite(values)):
            raise LibraryError("NLDM table contains non-finite values")
        # Plain-Python mirrors of the grid for the scalar lookup hot path:
        # STA issues hundreds of thousands of single-point lookups, and
        # bisect over a small list beats a scalar ndarray searchsorted by
        # an order of magnitude.
        object.__setattr__(self, "_slew_list", slews.tolist())
        object.__setattr__(self, "_load_list", loads.tolist())
        object.__setattr__(self, "_value_rows", values.tolist())
        object.__setattr__(self, "_max_i", len(slews) - 2)
        object.__setattr__(self, "_max_j", len(loads) - 2)

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with linear edge extrapolation.

        Exact on grid nodes: an index that falls exactly on the grid
        produces a segment fraction of exactly 0.0 or 1.0 (numerator and
        denominator are the identical float expression), and those cases
        short-circuit to the stored values — so ``lookup(slews[i],
        loads[j]) == values[i, j]`` bit-for-bit, never a reconstruction
        through ``v0 + 1.0*(v1 - v0)`` (which loses ulps).
        """
        slews = self._slew_list
        loads = self._load_list
        i = bisect_right(slews, slew) - 1
        if i < 0:
            i = 0
        elif i > self._max_i:
            i = self._max_i
        j = bisect_right(loads, load) - 1
        if j < 0:
            j = 0
        elif j > self._max_j:
            j = self._max_j
        s0 = slews[i]
        l0 = loads[j]
        ts = (slew - s0) / (slews[i + 1] - s0)
        tl = (load - l0) / (loads[j + 1] - l0)
        row0 = self._value_rows[i]
        row1 = self._value_rows[i + 1]
        if tl == 0.0:
            v0, v1 = row0[j], row1[j]
        elif tl == 1.0:
            v0, v1 = row0[j + 1], row1[j + 1]
        else:
            v00 = row0[j]
            v10 = row1[j]
            v0 = v00 + tl * (row0[j + 1] - v00)
            v1 = v10 + tl * (row1[j + 1] - v10)
        if ts == 0.0:
            return v0
        if ts == 1.0:
            return v1
        return (1 - ts) * v0 + ts * v1

    def scaled(self, factor: float) -> "NldmTable":
        """A copy with all values multiplied by *factor* (ablations)."""
        return NldmTable(self.slews.copy(), self.loads.copy(),
                         self.values * factor)

    def to_dict(self) -> dict:
        return {
            "slews": self.slews.tolist(),
            "loads": self.loads.tolist(),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NldmTable":
        return cls(np.asarray(data["slews"]), np.asarray(data["loads"]),
                   np.asarray(data["values"]))


def _segment(axis: np.ndarray, x: float) -> int:
    """Index of the interpolation segment for *x* (clamped for edges).

    Uses ``side="right"`` so an on-grid *x* selects the segment to its
    right — exactly the segment :meth:`NldmTable.lookup`'s
    ``bisect_right`` picks.  (With the historic ``side="left"`` the two
    disagreed for every interior grid node; the interpolated *value* was
    the same only because grid nodes interpolate exactly from either
    side, and any consumer combining both index conventions would have
    mixed segments.)
    """
    i = int(np.searchsorted(axis, x, side="right") - 1)
    return min(max(i, 0), len(axis) - 2)
