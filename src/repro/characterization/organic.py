"""The characterised pentacene pseudo-E library."""

from __future__ import annotations

from pathlib import Path

from repro.cells.library_def import organic_library_definition
from repro.characterization.harness import (
    CharacterizationGrid,
    characterize_library,
)
from repro.characterization.library import Library
from repro.spice.elements import FetModel


def organic_library(model: FetModel | None = None,
                    grid: CharacterizationGrid | None = None,
                    cache_dir: Path | None = None,
                    use_cache: bool = True,
                    workers: int | None = None,
                    **definition_kwargs) -> Library:
    """Characterise (or load from cache) the organic library.

    Passing a ``model`` (e.g. :func:`repro.devices.materials.dntt_model`)
    retargets the library to a different organic semiconductor; any other
    keyword is forwarded to
    :func:`repro.cells.library_def.organic_library_definition`.
    """
    if model is not None:
        definition_kwargs["model"] = model
    defn = organic_library_definition(**definition_kwargs)
    return characterize_library(defn, grid=grid, cache_dir=cache_dir,
                                use_cache=use_cache, workers=workers)
