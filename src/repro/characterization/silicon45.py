"""The characterised reduced 45 nm CMOS library."""

from __future__ import annotations

from pathlib import Path

from repro.cells.library_def import silicon_library_definition
from repro.characterization.harness import (
    CharacterizationGrid,
    characterize_library,
)
from repro.characterization.library import Library


def silicon_library(grid: CharacterizationGrid | None = None,
                    cache_dir: Path | None = None,
                    use_cache: bool = True,
                    workers: int | None = None,
                    **definition_kwargs) -> Library:
    """Characterise (or load from cache) the reduced silicon library."""
    defn = silicon_library_definition(**definition_kwargs)
    return characterize_library(defn, grid=grid, cache_dir=cache_dir,
                                use_cache=use_cache, workers=workers)
