"""Characterisation runs: transistor-level transients -> NLDM tables.

For every timing arc of every cell, the harness builds a testbench
(:class:`repro.spice.Circuit` with a ramp input source and a capacitive
load), runs a transient for each point of the slew x load grid, and
measures 50%-to-50% propagation delay plus the output's 20%-80% transition.
The flip-flop additionally gets clk->q tables and bisection-based setup and
hold times, mirroring what a commercial characterisation tool performs.

Because a library build runs hundreds of multi-transistor transients,
:func:`characterize_library` caches its result as JSON keyed by a hash of
the full cell-design description (device parameters, sizes, rails, grid).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, asdict
from pathlib import Path

import numpy as np

from repro.cells.library_def import CellLibraryDefinition
from repro.cells.sizing import estimate_gate_delay
from repro.cells.topologies import CellDesign, CompositeCell
from repro.characterization.library import (
    CellTiming,
    Library,
    SequentialTiming,
    TimingArc,
)
from repro.characterization.nldm import NldmTable
from repro.errors import (
    AnalysisError,
    CharacterizationError,
    ConvergenceError,
    LibraryError,
)
from repro.runtime import (
    chunked as _chunked,
    ensemble_batch as _ensemble_batch,
    ensemble_enabled as _ensemble_enabled,
    parallel_map,
    telemetry,
)
from repro.runtime.cache import ResultCache, default_cache_root
from repro.spice.dc import operating_point
from repro.spice.elements import Capacitor, RampValue, VoltageSource
from repro.spice.ensemble import (EnsembleTransient, Probe,
                                  ensemble_operating_point)
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientOptions, transient
from repro.spice.waveform import delay_between, resolve_effect_delay

#: Measurement thresholds (fractions of the rail swing).
DELAY_THRESHOLD = 0.5
SLEW_LOW, SLEW_HIGH = 0.2, 0.8
#: Ratio of full-ramp time to 20-80 slew.
_RAMP_FACTOR = 1.0 / (SLEW_HIGH - SLEW_LOW)
#: Adaptive-step error tolerance as a fraction of the rail swing: steps
#: may only grow past nominal while the predictor misses by less than this.
_LTE_FRACTION = 5e-4


@dataclass(frozen=True)
class CharacterizationGrid:
    """The slew x load index grid used for every NLDM table."""

    slews: tuple[float, ...]
    loads: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.slews) < 2 or len(self.loads) < 2:
            raise CharacterizationError("grid needs at least 2x2 points")
        if any(s <= 0 for s in self.slews) or any(c <= 0 for c in self.loads):
            raise CharacterizationError("grid values must be positive")
        if (list(self.slews) != sorted(self.slews)
                or list(self.loads) != sorted(self.loads)):
            raise CharacterizationError("grid values must be ascending")


def ramp_source(v0: float, v1: float, t_start: float, slew: float) -> RampValue:
    """A voltage-vs-time callable: hold v0, ramp to v1 over the 20-80 *slew*.

    Returns a :class:`~repro.spice.elements.RampValue` rather than a bare
    closure so the ensemble engine can read the breakpoints and evaluate
    all members' ramps as one array expression.
    """
    return RampValue(v0, v1, t_start, slew * _RAMP_FACTOR)


def _non_controlling(design: CellDesign, pin: str) -> dict[str, float]:
    """Side-input levels that let *pin* control the output.

    Found by logic evaluation: a side-value assignment under which
    toggling *pin* toggles the output.  All six library cells admit one
    (NAND: others high; NOR: others low; INV: none).
    """
    vdd = design.rails["vdd"]
    others = [p for p in design.inputs if p != pin]
    if not others:
        return {}
    for assignment in itertools.product((False, True), repeat=len(others)):
        values = dict(zip(others, assignment))
        lo = design.evaluate(**values, **{pin: False})
        hi = design.evaluate(**values, **{pin: True})
        if lo != hi:
            return {p: (vdd if v else 0.0) for p, v in values.items()}
    raise CharacterizationError(
        f"no sensitising side-input assignment for {design.name!r}.{pin}")


def _arc_testbench(design: CellDesign, pin: str, v0: float, v1: float,
                   t_start: float, slew: float, load: float) -> Circuit:
    ckt = Circuit(f"char_{design.name}_{pin}")
    node_map = {p: p for p in design.inputs}
    node_map["out"] = "out"
    for rail, volts in design.rails.items():
        if volts == 0.0:
            node_map[rail] = "0"
        else:
            node_map[rail] = rail
            ckt.add(VoltageSource(f"v_{rail}", rail, "0", volts))
    side = _non_controlling(design, pin)
    for p, v in side.items():
        ckt.add(VoltageSource(f"v_{p}", p, "0", v))
    ckt.add(VoltageSource(f"v_{pin}", pin, "0",
                          ramp_source(v0, v1, t_start, slew)))
    design.instantiate(ckt, node_map)
    ckt.add(Capacitor("c_load", "out", "0", load))
    return ckt


def measure_arc(design: CellDesign, pin: str, input_rise: bool,
                slew: float, load: float,
                delay_hint: float | None = None) -> tuple[float, float]:
    """One (delay, output transition) measurement via transient analysis.

    ``input_rise`` selects the input edge; our inverting cells produce the
    opposite output edge.  Returns 50%-50% delay and the output's 20%-80%
    transition time.  The time window auto-extends (up to 3 retries) if the
    output has not completed its swing.
    """
    vdd = design.rails["vdd"]
    v0, v1 = (0.0, vdd) if input_rise else (vdd, 0.0)
    if delay_hint is None:
        delay_hint = estimate_gate_delay(design, load + 1e-18)
    t_start = 0.25 * slew * _RAMP_FACTOR + 0.05 * delay_hint

    # The expected final output level comes from the cell's logic function,
    # NOT from the waveform shape: slow two-stage cells can couple the
    # output the wrong way first (capacitive overshoot), which would fool
    # a direction guess based on initial/final samples.
    side = _non_controlling(design, pin)
    side_logic = {p: v > vdd / 2 for p, v in side.items()}
    final_logic = design.evaluate(**side_logic, **{pin: input_rise})
    target = vdd if final_logic else 0.0
    out_direction = "rise" if final_logic else "fall"

    window = max(8.0 * delay_hint, 3.0 * slew * _RAMP_FACTOR)
    t_stop = t_start
    for _attempt in range(5):
        t_stop = t_start + slew * _RAMP_FACTOR + window
        n_steps = 700
        dt = t_stop / n_steps
        # The ramp must be resolved by several steps.
        dt = min(dt, slew * _RAMP_FACTOR / 8.0)
        ckt = _arc_testbench(design, pin, v0, v1, t_start, slew, load)
        try:
            result = transient(ckt, TransientOptions(
                dt=dt, t_stop=t_stop, dt_max=16.0 * dt,
                lte_tol=_LTE_FRACTION * vdd))
        except ConvergenceError as exc:
            raise exc.with_context(cell=design.name, pin=pin,
                                   input_rise=input_rise,
                                   slew=slew, load=load)
        w_in = result.waveform(pin)
        w_out = result.waveform("out")
        if not w_out.settled(target, 0.05 * vdd):
            if telemetry.ENABLED:
                telemetry.count("char.window_retries")
            window *= 4.0
            continue
        try:
            delay = delay_between(
                w_in, w_out, DELAY_THRESHOLD * vdd, DELAY_THRESHOLD * vdd,
                cause_direction="rise" if input_rise else "fall",
                effect_direction=out_direction,
                context=f"{design.name}.{pin} "
                        f"{'rise' if input_rise else 'fall'} "
                        f"slew={slew:g} load={load:g}")
            out_slew = w_out.transition_time(0.0, vdd, SLEW_LOW, SLEW_HIGH)
        except AnalysisError as exc:
            raise CharacterizationError(
                f"measurement failed for {design.name!r}.{pin} "
                f"(slew={slew:g}, load={load:g}): {exc}") from exc
        return delay, out_slew
    raise CharacterizationError(
        f"output of {design.name!r}.{pin} did not settle within "
        f"{t_stop:g}s (slew={slew:g}, load={load:g})")


def measure_arc_batch(design: CellDesign, pin: str, input_rise: bool,
                      points: list[tuple[float, float]],
                      hints: dict[float, float] | None = None
                      ) -> list[tuple[float, float]]:
    """All (slew, load) measurements of one timing arc as stacked solves.

    Builds one :class:`~repro.spice.ensemble.EnsembleTransient` per chunk
    of grid points — every member gets the exact testbench, timestep
    schedule and window :func:`measure_arc` would use — and extracts the
    delay/transition crossings online.  Members whose output has not
    settled in the first window (or whose batch hits a convergence
    failure) fall back to the scalar :func:`measure_arc`, which retries
    with its usual window growth; results are therefore the scalar
    results, just batched where batching is possible.
    """
    vdd = design.rails["vdd"]
    v0, v1 = (0.0, vdd) if input_rise else (vdd, 0.0)
    hints = hints or {}
    side = _non_controlling(design, pin)
    side_logic = {p: v > vdd / 2 for p, v in side.items()}
    final_logic = design.evaluate(**side_logic, **{pin: input_rise})
    target = vdd if final_logic else 0.0
    out_direction = "rise" if final_logic else "fall"

    point_hints = [
        hints[load] if load in hints
        else estimate_gate_delay(design, load + 1e-18)
        for _slew, load in points]

    results: list[tuple[float, float] | None] = [None] * len(points)
    for chunk_start in range(0, len(points), _ensemble_batch()):
        chunk_idx = list(range(chunk_start,
                               min(chunk_start + _ensemble_batch(),
                                   len(points))))
        # The scalar controller's retry loop, batched: members whose
        # output has not settled get the same window *= 4 re-run (with
        # the same recomputed dt) as measure_arc, as an ever-shrinking
        # straggler ensemble.
        windows = {k: max(8.0 * point_hints[k],
                          3.0 * points[k][0] * _RAMP_FACTOR)
                   for k in chunk_idx}
        # The testbench depends only on (slew, load, t_start) — all
        # attempt-invariant.  Build each circuit once per chunk and reuse
        # it across window retries; only the TransientOptions (t_stop,
        # dt) are recomputed per attempt.
        starts = {k: (0.25 * points[k][0] * _RAMP_FACTOR
                      + 0.05 * point_hints[k])
                  for k in chunk_idx}
        circuits = {k: _arc_testbench(design, pin, v0, v1, starts[k],
                                      points[k][0], points[k][1])
                    for k in chunk_idx}
        pending = chunk_idx
        for _attempt in range(5):
            if not pending:
                break
            members, opts = [], []
            for k in pending:
                slew, _load = points[k]
                t_stop = starts[k] + slew * _RAMP_FACTOR + windows[k]
                dt = min(t_stop / 700.0, slew * _RAMP_FACTOR / 8.0)
                members.append(circuits[k])
                opts.append(TransientOptions(
                    dt=dt, t_stop=t_stop, dt_max=16.0 * dt,
                    lte_tol=_LTE_FRACTION * vdd))
            probes = [Probe(pin, DELAY_THRESHOLD * vdd),
                      Probe("out", DELAY_THRESHOLD * vdd),
                      Probe("out", SLEW_LOW * vdd),
                      Probe("out", SLEW_HIGH * vdd)]
            try:
                ens = EnsembleTransient(members, opts, probes).run()
            except ConvergenceError:
                break  # scalar fallback reproduces the context-rich error
            still_pending = []
            for m, k in enumerate(pending):
                if abs(ens.final_value("out")[m] - target) > 0.05 * vdd:
                    if telemetry.ENABLED:
                        telemetry.count("char.window_retries")
                    windows[k] *= 4.0
                    still_pending.append(k)
                    continue
                slew_k, load_k = points[k]
                results[k] = _arc_from_ensemble(
                    ens, m, vdd, input_rise, out_direction, target,
                    context=f"{design.name}.{pin} "
                            f"{'rise' if input_rise else 'fall'} "
                            f"slew={slew_k:g} load={load_k:g}")
                # Settled but unmeasurable stays None: the scalar path
                # raises the canonical CharacterizationError for it.
            pending = still_pending

    if telemetry.ENABLED:
        fallbacks = sum(1 for v in results if v is None)
        if fallbacks:
            telemetry.count("char.scalar_point_fallbacks", fallbacks)
    return [
        value if value is not None
        else measure_arc(design, pin, input_rise, slew, load,
                         delay_hint=hint)
        for value, (slew, load), hint in zip(results, points, point_hints)]


def _arc_from_ensemble(ens: EnsembleTransient, m: int, vdd: float,
                       input_rise: bool, out_direction: str, target: float,
                       context: str | None = None
                       ) -> tuple[float, float] | None:
    """(delay, out_slew) for one settled member, or None for a scalar retry.

    Replays :func:`repro.spice.waveform.delay_between` and
    :meth:`~repro.spice.waveform.Waveform.transition_time` on the online
    crossing records: first cause crossing, then the shared
    :func:`~repro.spice.waveform.resolve_effect_delay` policy (first
    effect crossing at or after it; the heavy-input-loading fallback is
    clamped and logged exactly as on the scalar path), and the 20%/80%
    crossings anchored to the output's **final** transition — the same
    last-monotone-edge rule :meth:`Waveform.transition_time` applies, so
    glitchy outputs measure identically on both paths.
    """
    final_out = ens.final_value("out")[m]
    if abs(final_out - target) > 0.05 * vdd:
        return None
    cause = ens.crossing_times(0, m, "rise" if input_rise else "fall")
    if len(cause) == 0:
        return None
    t_cause = cause[0]
    effect = ens.crossing_times(1, m, out_direction)
    if len(effect) == 0:
        return None
    delay = resolve_effect_delay(float(t_cause), effect, context=context)
    rising = final_out > ens.initial_value("out")[m]
    slew_dir = "rise" if rising else "fall"
    t_lo = ens.crossing_times(2, m, slew_dir)
    t_hi = ens.crossing_times(3, m, slew_dir)
    if len(t_lo) == 0 or len(t_hi) == 0:
        return None
    # Final-transition anchoring (see Waveform.transition_time): the edge
    # finishes at the threshold reached last in the transition direction.
    if rising:
        t_second = float(t_hi[-1])
        firsts = t_lo[t_lo <= t_second]
    else:
        t_second = float(t_lo[-1])
        firsts = t_hi[t_hi <= t_second]
    if len(firsts) == 0:
        return None
    return float(delay), float(abs(t_second - float(firsts[-1])))


def _static_power(design: CellDesign, input_levels: dict[str, float]) -> float:
    from repro.cells.topologies import build_dc_testbench

    ckt = build_dc_testbench(design, input_levels)
    x, sys = operating_point(ckt)
    power = 0.0
    for rail, volts in design.rails.items():
        if volts == 0.0:
            continue
        power -= volts * sys.source_current(x, f"v_{rail}")
    return power


def average_leakage(design: CellDesign) -> float:
    """Static power averaged over all input states.

    The 2**n input-state testbenches are structurally identical (only
    source values differ), so they solve as one stacked ensemble DC —
    rail currents come straight off each lane's branch variables.
    """
    from repro.cells.topologies import build_dc_testbench

    vdd = design.rails["vdd"]
    states = list(itertools.product((0.0, vdd), repeat=len(design.inputs)))
    circuits = [build_dc_testbench(design, dict(zip(design.inputs, state)))
                for state in states]
    x, es = ensemble_operating_point(circuits)
    total = 0.0
    for lane in range(len(states)):
        for rail, volts in design.rails.items():
            if volts == 0.0:
                continue
            total -= volts * float(x[lane, es.branch_index[f"v_{rail}"]])
    return total / len(states)


def _measure_arc_task(task) -> tuple[float, float]:
    """Module-level (picklable) worker for one characterisation arc."""
    design, pin, input_rise, slew, load, hint = task
    edge = "rise" if input_rise else "fall"
    with telemetry.span(f"arc:{design.name}.{pin}:{edge}"):
        return measure_arc(design, pin, input_rise, slew, load,
                           delay_hint=hint)


def _measure_arc_batch_task(task) -> list[tuple[float, float]]:
    """Module-level (picklable) worker for one arc's whole grid ensemble."""
    design, pin, input_rise, points, hints = task
    edge = "rise" if input_rise else "fall"
    with telemetry.span(f"arc:{design.name}.{pin}:{edge}"):
        return measure_arc_batch(design, pin, input_rise, points,
                                 hints=hints)


def characterize_cell(design: CellDesign, grid: CharacterizationGrid,
                      area: float, workers: int | None = None) -> CellTiming:
    """Full NLDM characterisation of one combinational cell.

    By default each timing arc's entire slew x load grid runs as **one**
    stacked ensemble transient (``REPRO_ENSEMBLE=0`` restores the scalar
    one-transient-per-point path), so ``parallel_map`` shards whole-arc
    batches rather than single grid points.  Results are identical to the
    scalar serial run either way.
    """
    with telemetry.span(f"cell:{design.name}"):
        return _characterize_cell(design, grid, area, workers)


def _characterize_cell(design: CellDesign, grid: CharacterizationGrid,
                       area: float, workers: int | None) -> CellTiming:
    telemetry.count("char.cells")
    hints = {load: estimate_gate_delay(design, load + 1e-18)
             for load in grid.loads}
    if _ensemble_enabled():
        points = [(slew, load) for load in grid.loads
                  for slew in grid.slews]
        tasks = [(design, pin, input_rise, points, hints)
                 for pin in design.inputs for input_rise in (True, False)]
        labels = [f"{design.name}.{pin} "
                  f"{'rise' if input_rise else 'fall'} grid"
                  for pin in design.inputs for input_rise in (True, False)]
        results = parallel_map(_measure_arc_batch_task, tasks,
                               workers=workers, labels=labels,
                               on_error="capture",
                               phase=f"characterize[{design.name}]")
        measured = [value for r in results for value in r.unwrap()]
    else:
        tasks = []
        labels = []
        for pin in design.inputs:
            for input_rise in (True, False):
                for j, load in enumerate(grid.loads):
                    for i, slew in enumerate(grid.slews):
                        tasks.append((design, pin, input_rise, slew, load,
                                      hints[load]))
                        labels.append(f"{design.name}.{pin} "
                                      f"{'rise' if input_rise else 'fall'} "
                                      f"slew[{i}] load[{j}]")
        results = parallel_map(_measure_arc_task, tasks, workers=workers,
                               labels=labels, on_error="capture",
                               phase=f"characterize[{design.name}]")
        # Re-raise the first failure in task order (same exception, and
        # thus the same behaviour, as the serial loop).
        measured = [r.unwrap() for r in results]

    arcs: list[TimingArc] = []
    k = 0
    for pin in design.inputs:
        for input_rise in (True, False):
            delays = np.empty((len(grid.slews), len(grid.loads)))
            slews_out = np.empty_like(delays)
            for j in range(len(grid.loads)):
                for i in range(len(grid.slews)):
                    delays[i, j], slews_out[i, j] = measured[k]
                    k += 1
            # Inverting cells: input rise -> output fall.
            out_dir = "fall" if input_rise else "rise"
            arcs.append(TimingArc(
                input_pin=pin,
                output_transition=out_dir,
                delay=NldmTable(np.asarray(grid.slews),
                                np.asarray(grid.loads), delays),
                transition=NldmTable(np.asarray(grid.slews),
                                     np.asarray(grid.loads), slews_out),
            ))
    return CellTiming(
        name=design.name,
        function=design.function,
        inputs=design.inputs,
        input_caps={p: design.input_capacitance(p) for p in design.inputs},
        area=area,
        arcs=tuple(arcs),
        leakage=average_leakage(design),
    )


# ---------------------------------------------------------------------------
# Flip-flop characterisation
# ---------------------------------------------------------------------------

def _dff_testbench(dff: CompositeCell, load: float,
                   sources: dict[str, object]) -> Circuit:
    ckt = Circuit(f"char_{dff.name}")
    node_map = {p: p for p in dff.inputs}
    node_map.update({o: o for o in dff.outputs})
    for rail, volts in dff.rails.items():
        if volts == 0.0:
            node_map[rail] = "0"
        else:
            node_map[rail] = rail
            ckt.add(VoltageSource(f"v_{rail}", rail, "0", volts))
    for pin in dff.inputs:
        ckt.add(VoltageSource(f"v_{pin}", pin, "0", sources[pin]))
    dff.instantiate(ckt, node_map)
    ckt.add(Capacitor("c_load", "q", "0", load))
    return ckt


def _dff_stimulus(dff: CompositeCell, load: float, clk_slew: float,
                  t_unit: float, d_level: float, q_rises: bool,
                  d_offset_before_clk: float | None = None,
                  t_extra: float = 0.0
                  ) -> tuple[Circuit, float, TransientOptions]:
    """Shared clk->q stimulus: clear/preset pulse, then one clock edge.

    Returns (testbench, t_clk_edge, options).  When
    ``d_offset_before_clk`` is given, D starts at the complement of
    ``d_level`` and toggles that long before the clock edge (the setup
    search's knob); otherwise D is held constant.
    """
    vdd = dff.rails["vdd"]
    t_release = 6.0 * t_unit
    t_clk = t_release + 12.0 * t_unit
    t_stop = t_clk + 14.0 * t_unit + t_extra

    # Force the opposite initial state so the clock edge produces a Q edge.
    force_pin = "clr_n" if q_rises else "pre_n"
    idle_pin = "pre_n" if q_rises else "clr_n"
    sources: dict[str, object] = {
        force_pin: ramp_source(0.0, vdd, t_release, 2.0 * t_unit * 0.6),
        idle_pin: vdd,
        "clk": ramp_source(0.0, vdd, t_clk, clk_slew),
    }
    if d_offset_before_clk is None:
        sources["d"] = d_level
    else:
        d0 = vdd - d_level
        sources["d"] = ramp_source(d0, d_level, t_clk - d_offset_before_clk,
                                   clk_slew)
    ckt = _dff_testbench(dff, load, sources)
    dt = min(t_stop / 900.0, clk_slew * _RAMP_FACTOR / 6.0, 2.0 * t_unit)
    options = TransientOptions(dt=dt, t_stop=t_stop, dt_max=16.0 * dt,
                               lte_tol=_LTE_FRACTION * vdd)
    return ckt, t_clk, options


def _dff_transient(dff: CompositeCell, load: float, clk_slew: float,
                   t_unit: float, d_level: float, q_rises: bool,
                   d_offset_before_clk: float | None = None,
                   t_extra: float = 0.0):
    """Run the shared clk->q stimulus; returns (result, t_clk_edge)."""
    ckt, t_clk, options = _dff_stimulus(
        dff, load, clk_slew, t_unit, d_level, q_rises,
        d_offset_before_clk=d_offset_before_clk, t_extra=t_extra)
    try:
        result = transient(ckt, options)
    except ConvergenceError as exc:
        raise exc.with_context(cell=dff.name, clk_slew=clk_slew, load=load)
    return result, t_clk


def measure_clk_to_q(dff: CompositeCell, clk_slew: float, load: float,
                     t_unit: float, q_rises: bool = True) -> float:
    """Clock-50% to Q-50% delay for one grid point.

    The observation window grows with the Q load (a heavily loaded output
    takes many gate delays to swing) and auto-extends if Q has not
    completed its transition.
    """
    vdd = dff.rails["vdd"]
    d_level = vdd if q_rises else 0.0
    target = vdd if q_rises else 0.0
    direction = "rise" if q_rises else "fall"
    t_extra = 4.0 * t_unit
    last_error: Exception | None = None
    for _attempt in range(5):
        result, t_clk = _dff_transient(dff, load, clk_slew, t_unit,
                                       d_level, q_rises, t_extra=t_extra)
        w_q = result.waveform("q")
        if w_q.settled(target, 0.05 * vdd):
            w_clk = result.waveform("clk")
            try:
                return delay_between(w_clk, w_q, 0.5 * vdd, 0.5 * vdd,
                                     cause_direction="rise",
                                     effect_direction=direction)
            except AnalysisError as exc:
                last_error = exc
        if telemetry.ENABLED:
            telemetry.count("char.dff_window_retries")
        t_extra *= 4.0
    raise CharacterizationError(
        f"clk->q measurement failed (slew={clk_slew:g}, load={load:g}): "
        f"{last_error or 'Q did not settle'}")


def _captures(dff: CompositeCell, load: float, clk_slew: float,
              t_unit: float, setup_candidate: float) -> bool:
    """Does a 0->1 D edge at ``t_clk - setup_candidate`` get captured?

    D starts low (so a missed capture leaves Q low) and rises
    *setup_candidate* before the clock's 50% point; capture is judged by
    the final Q level.
    """
    vdd = dff.rails["vdd"]
    # The flop is cleared first, so an uncaptured Q stays at 0.
    result, _t_clk = _dff_transient(
        dff, load, clk_slew, t_unit, d_level=vdd, q_rises=True,
        d_offset_before_clk=setup_candidate, t_extra=4.0 * t_unit)
    w_q = result.waveform("q")
    return w_q.final_value > 0.6 * vdd


def _captures_batch(dff: CompositeCell, load: float, clk_slew: float,
                    t_unit: float, offsets: list[float]
                    ) -> list[bool] | None:
    """Capture verdicts for several setup candidates as one ensemble.

    Same judgement as :func:`_captures` (final Q above 60% of the rail),
    one stacked transient for all candidates.  Returns None when the
    batch hits a convergence failure, letting the caller fall back to
    the scalar search.
    """
    vdd = dff.rails["vdd"]
    members, opts = [], []
    for offset in offsets:
        ckt, _t_clk, options = _dff_stimulus(
            dff, load, clk_slew, t_unit, d_level=vdd, q_rises=True,
            d_offset_before_clk=offset, t_extra=4.0 * t_unit)
        members.append(ckt)
        opts.append(options)
    try:
        ens = EnsembleTransient(members, opts).run()
    except ConvergenceError:
        return None
    return [bool(v > 0.6 * vdd) for v in ens.final_value("q")]


def _setup_bisect(dff: CompositeCell, clk_slew: float, load: float,
                  t_unit: float, lo: float, hi: float,
                  resolution: float) -> float:
    """Scalar bisection on a (lo fails, hi captures) bracket."""
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if _captures(dff, load, clk_slew, t_unit, mid):
            hi = mid
        else:
            lo = mid
    return hi


def measure_setup_time(dff: CompositeCell, clk_slew: float, load: float,
                       t_unit: float, resolution_frac: float = 0.1) -> float:
    """Minimum D-before-clock time that still captures.

    Maintains a (``lo`` fails, ``hi`` captures) bracket and shrinks it to
    ``resolution``.  The default search probes several interior
    candidates per round as one stacked ensemble (a K-way section search,
    ~3 rounds instead of ~7 serial bisection transients); with
    ``REPRO_ENSEMBLE=0`` it is the classic one-probe-per-round bisection.
    Either way the returned ``hi`` is a capturing upper bracket within
    ``resolution`` of the true threshold.
    """
    lo, hi = 0.0, 10.0 * t_unit
    resolution = resolution_frac * t_unit
    use_ensemble = _ensemble_enabled()

    if use_ensemble:
        flags = _captures_batch(dff, load, clk_slew, t_unit, [hi, lo])
        use_ensemble = flags is not None
    if use_ensemble:
        captures_hi, captures_lo = flags
    else:
        captures_hi = _captures(dff, load, clk_slew, t_unit, hi)
        captures_lo = (_captures(dff, load, clk_slew, t_unit, lo)
                       if captures_hi else False)
    if not captures_hi:
        raise CharacterizationError("flop does not capture even with "
                                    f"setup {hi:g}s; check sizing")
    if captures_lo:
        return 0.0

    while use_ensemble and hi - lo > resolution:
        k = min(7, max(1, int(np.ceil((hi - lo) / resolution)) - 1))
        candidates = lo + (hi - lo) * np.arange(1, k + 1) / (k + 1)
        flags = _captures_batch(dff, load, clk_slew, t_unit,
                                list(candidates))
        if flags is None:
            use_ensemble = False
            break
        capturing = [i for i, f in enumerate(flags) if f]
        if capturing:
            first = capturing[0]
            hi = float(candidates[first])
            if first > 0:
                lo = float(candidates[first - 1])
        else:
            lo = float(candidates[-1])
    if hi - lo > resolution:
        return _setup_bisect(dff, clk_slew, load, t_unit, lo, hi,
                             resolution)
    return hi


def _clk_to_q_task(task) -> float:
    """Module-level (picklable) worker for one clk->q grid point."""
    dff, slew, load, t_unit = task
    return measure_clk_to_q(dff, slew, load, t_unit)


def measure_clk_to_q_batch(dff: CompositeCell,
                           points: list[tuple[float, float]],
                           t_unit: float) -> list[float]:
    """Clk->q delays for several (clk_slew, load) points, one ensemble.

    Members whose Q has not settled after the first observation window —
    or whose batch fails to converge — fall back to the scalar
    :func:`measure_clk_to_q` with its window-growing retries.
    """
    vdd = dff.rails["vdd"]
    delays: list[float | None] = [None] * len(points)
    # Scalar retry loop, batched: members whose Q has not settled (or
    # whose crossings are incomplete) re-run with the same t_extra *= 4
    # growth as measure_clk_to_q, as a shrinking straggler ensemble.
    t_extras = {k: 4.0 * t_unit for k in range(len(points))}
    pending = list(range(len(points)))
    for _attempt in range(5):
        if not pending:
            break
        members, opts = [], []
        for k in pending:
            clk_slew, load = points[k]
            ckt, _t_clk, options = _dff_stimulus(
                dff, load, clk_slew, t_unit, d_level=vdd, q_rises=True,
                t_extra=t_extras[k])
            members.append(ckt)
            opts.append(options)
        probes = [Probe("clk", 0.5 * vdd), Probe("q", 0.5 * vdd)]
        try:
            ens = EnsembleTransient(members, opts, probes).run()
        except ConvergenceError:
            break  # scalar fallback reproduces the context-rich error
        still_pending = []
        for m, k in enumerate(pending):
            delay = None
            if abs(ens.final_value("q")[m] - vdd) <= 0.05 * vdd:
                cause = ens.crossing_times(0, m, "rise")
                effect = ens.crossing_times(1, m, "rise")
                if len(cause):
                    after = effect[effect >= cause[0]]
                    if len(after):
                        delay = float(after[0] - cause[0])
                    elif len(effect):
                        delay = float(effect[-1] - cause[0])
            if delay is None:
                if telemetry.ENABLED:
                    telemetry.count("char.dff_window_retries")
                t_extras[k] *= 4.0
                still_pending.append(k)
            else:
                delays[k] = delay
        pending = still_pending

    return [
        delay if delay is not None
        else measure_clk_to_q(dff, clk_slew, load, t_unit)
        for delay, (clk_slew, load) in zip(delays, points)]


def _clk_to_q_batch_task(task) -> list[float]:
    """Module-level (picklable) worker for a chunk of clk->q grid points."""
    dff, points, t_unit = task
    return measure_clk_to_q_batch(dff, points, t_unit)


def characterize_dff(dff: CompositeCell, grid: CharacterizationGrid,
                     area: float, t_unit: float,
                     workers: int | None = None) -> SequentialTiming:
    """Clk->q NLDM table plus scalar setup/hold.

    ``t_unit`` is a per-process time scale (roughly one gate delay) used to
    schedule stimulus edges and bound the setup search.  Grid points run
    across worker processes when ``workers`` (or ``REPRO_WORKERS``) asks
    for it; the setup-time bisection stays serial (each trial depends on
    the previous one).
    """
    with telemetry.span("cell:dff"):
        return _characterize_dff(dff, grid, area, t_unit, workers)


def _characterize_dff(dff: CompositeCell, grid: CharacterizationGrid,
                      area: float, t_unit: float,
                      workers: int | None) -> SequentialTiming:
    telemetry.count("char.cells")
    if _ensemble_enabled():
        points = [(slew, load)
                  for slew in grid.slews for load in grid.loads]
        chunks = _chunked(points, _ensemble_batch())
        tasks = [(dff, chunk, t_unit) for chunk in chunks]
        labels = [f"{dff.name} clk->q batch[{i}]"
                  for i in range(len(chunks))]
        results = parallel_map(_clk_to_q_batch_task, tasks,
                               workers=workers, labels=labels,
                               on_error="capture",
                               phase=f"characterize[{dff.name}]")
        flat = [v for r in results for v in r.unwrap()]
    else:
        tasks = [(dff, slew, load, t_unit)
                 for slew in grid.slews for load in grid.loads]
        labels = [f"{dff.name} clk->q slew[{i}] load[{j}]"
                  for i in range(len(grid.slews))
                  for j in range(len(grid.loads))]
        results = parallel_map(_clk_to_q_task, tasks, workers=workers,
                               labels=labels, on_error="capture",
                               phase=f"characterize[{dff.name}]")
        flat = [r.unwrap() for r in results]
    values = np.asarray(flat).reshape(len(grid.slews), len(grid.loads))
    mid_slew = grid.slews[len(grid.slews) // 2]
    mid_load = grid.loads[len(grid.loads) // 2]
    setup = measure_setup_time(dff, mid_slew, mid_load, t_unit)
    # Hold: our fully-static NAND flop is hold-safe by construction (the
    # master is opaque when the clock is high); report a conservative
    # fraction of a gate delay.
    hold = 0.25 * t_unit

    leak_cells = {}
    for _, design, _ in dff.subcells:
        leak_cells.setdefault(design.name, average_leakage(design))
    leakage = sum(leak_cells[design.name] for _, design, _ in dff.subcells)

    return SequentialTiming(
        name="dff",
        input_caps={p: dff.input_capacitance(p) for p in dff.inputs},
        area=area,
        clk_to_q=NldmTable(np.asarray(grid.slews), np.asarray(grid.loads),
                           values),
        setup_time=setup,
        hold_time=hold,
        leakage=leakage,
    )


# ---------------------------------------------------------------------------
# Whole-library characterisation with disk caching
# ---------------------------------------------------------------------------

def default_cache_dir() -> Path:
    """Cache root (kept as an alias of the runtime cache's default)."""
    return default_cache_root()


def _definition_fingerprint(defn: CellLibraryDefinition,
                            grid: CharacterizationGrid) -> str:
    """Stable hash of everything that affects characterisation results."""
    payload: dict = {
        "vdd": defn.vdd,
        "process": defn.process,
        "grid": {"slews": grid.slews, "loads": grid.loads},
        "cells": {},
    }
    for name in (*defn.COMBINATIONAL,):
        cell = defn.cell(name)
        payload["cells"][name] = {
            "rails": cell.rails,
            "devices": [
                (d.name, d.drain, d.gate, d.source, d.w, d.l,
                 asdict(d.model))
                for d in cell.devices
            ],
        }
    payload["area"] = {name: defn.cell_area(name)
                       for name in (*defn.COMBINATIONAL, "dff")}
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def default_grid(defn: CellLibraryDefinition) -> CharacterizationGrid:
    """Process-appropriate slew/load grids.

    Anchored on the inverter's input capacitance and a DC-estimated FO4
    delay so the grid lands on the cell's real operating region whatever
    device model is plugged in.
    """
    inv = defn.cell("inv")
    cin = inv.input_capacitance("a")
    fo4 = estimate_gate_delay(inv, 4.0 * cin)
    slews = tuple(fo4 * f for f in (0.2, 0.7, 2.0, 6.0))
    loads = tuple(cin * f for f in (0.5, 2.0, 6.0, 16.0))
    return CharacterizationGrid(slews=slews, loads=loads)


def characterize_library(defn: CellLibraryDefinition,
                         grid: CharacterizationGrid | None = None,
                         cache_dir: Path | None = None,
                         use_cache: bool = True,
                         workers: int | None = None) -> Library:
    """Characterise all six cells, with persistent result caching.

    Results are memoised through :class:`repro.runtime.cache.ResultCache`
    (category ``library``), keyed by a fingerprint of everything that
    affects the physics: device-model parameters, sizes, rails and the
    NLDM grid.  ``use_cache=False`` bypasses the cache for this call;
    ``REPRO_CACHE=0`` disables it process-wide; ``cache_dir`` overrides
    the root (default ``REPRO_CACHE_DIR``).

    ``workers`` fans the per-arc transients out across processes (see
    :func:`repro.runtime.parallel_map`); results and the cache key are
    identical whatever the worker count.
    """
    from repro.spice.backends import get_backend
    with telemetry.span(f"characterize_library:{defn.name}",
                        backend=get_backend().name):
        return _characterize_library(defn, grid, cache_dir, use_cache,
                                     workers)


def _characterize_library(defn: CellLibraryDefinition,
                          grid: CharacterizationGrid | None,
                          cache_dir: Path | None,
                          use_cache: bool,
                          workers: int | None) -> Library:
    grid = grid or default_grid(defn)
    cache = ResultCache(root=cache_dir)
    key = _definition_fingerprint(defn, grid)
    cache_key = cache.key({"library": defn.name, "fingerprint": key})
    if use_cache:
        hit = cache.get("library", cache_key)
        if hit is not None:
            try:
                return Library.from_dict(hit)
            except (KeyError, TypeError, ValueError, LibraryError):
                pass  # payload schema drift: recharacterise below

    cells = {}
    for name in defn.COMBINATIONAL:
        cells[name] = characterize_cell(defn.cell(name), grid,
                                        area=defn.cell_area(name),
                                        workers=workers)

    inv = defn.cell("inv")
    t_unit = estimate_gate_delay(inv, 4.0 * inv.input_capacitance("a"))
    dff = characterize_dff(defn.dff, grid, area=defn.cell_area("dff"),
                           t_unit=t_unit, workers=workers)

    library = Library(
        name=defn.name,
        process=defn.process,
        vdd=defn.vdd,
        cells=cells,
        dff=dff,
        metadata={"fingerprint": key,
                  "grid_slews": list(grid.slews),
                  "grid_loads": list(grid.loads)},
    )
    if use_cache:
        cache.put("library", cache_key, library.to_dict())
    return library
