"""Alternative organic semiconductors (extension of the paper's Section 5.3).

The paper notes that "higher-performance organic semiconductors such as
DNTT, which has roughly 10x the mobility of the archetypal pentacene used
here" offer an upgrade path, citing Zschieschang et al. 2011 (C10-DNTT,
4.3 cm^2/Vs field-effect mobility, 68 mV/dec subthreshold slope).  This
module provides retargeted device models so the whole flow — cells,
characterisation, synthesis, architecture sweeps — can be re-run for a
different organic material, which is exactly how the authors say their
framework "can be generalized to other organic semiconductors".
"""

from __future__ import annotations

from dataclasses import replace

from repro.devices.pentacene import PENTACENE
from repro.devices.tft_level61 import UnifiedTft


def dntt_model(mobility_factor: float = 10.0, ss: float = 0.068 * 3,
               name: str = "dntt") -> UnifiedTft:
    """A DNTT-class device: pentacene retargeted with higher mobility.

    Parameters
    ----------
    mobility_factor:
        Band-mobility multiplier relative to pentacene (paper: ~10x).
    ss:
        Observed subthreshold slope in V/decade.  The reported C10-DNTT
        *device* slope is 68 mV/dec; circuit-grade large-area films are
        worse, so the default keeps a conservative 3x margin.
    """
    if mobility_factor <= 0:
        raise ValueError(f"mobility_factor must be positive, got {mobility_factor}")
    return replace(PENTACENE, mu_band=PENTACENE.mu_band * mobility_factor,
                   ss=ss, name=name)


def scaled_pentacene(feature_scale: float) -> UnifiedTft:
    """Pentacene with leakage/overlap scaled for a finer patterning pitch.

    ``feature_scale < 1`` models better shadow-mask resolution: the S/D
    overlap capacitance shrinks proportionally.  Channel behaviour is per
    unit W/L and does not change; the library builder passes the scale to
    the cell geometry instead.
    """
    if feature_scale <= 0:
        raise ValueError(f"feature_scale must be positive, got {feature_scale}")
    return replace(PENTACENE, c_overlap=PENTACENE.c_overlap * feature_scale,
                   name=f"pentacene_x{feature_scale:g}")


#: Registry of named organic materials for examples and CLI-style scripts.
MATERIALS: dict[str, UnifiedTft] = {
    "pentacene": PENTACENE,
    "dntt": dntt_model(),
}
