"""The golden pentacene OTFT and synthetic probe-station measurements.

The paper's framework is "based on experimental pentacene OTFTs" fabricated
at Princeton (Section 3.3): bottom-gate top-contact devices, 50 nm ALD
Al2O3 gate dielectric, 50 nm pentacene, W/L = 1000/80 um test structures.
We do not have that hardware, so this module provides the substitution
described in DESIGN.md:

- :data:`PENTACENE` — a :class:`~repro.devices.tft_level61.UnifiedTft`
  whose DC characteristics match every figure reported in the paper's
  Section 4.1 (checked by the calibration tests):

  * linear mobility ~ 0.16 cm^2/Vs,
  * subthreshold slope ~ 350 mV/decade,
  * on/off current ratio ~ 1e6,
  * VT = -1.3 V at VDS = 1 V and +1.3 V at VDS = 10 V (physical, p-type
    frame) — i.e. a strong drain-induced threshold shift,
  * VT spread across a sample within 0.5 V (see
    :mod:`repro.devices.variation`).

- :func:`measured_transfer_curve` — synthetic "experimental data": the
  golden device evaluated over a gate sweep with multiplicative device
  noise, a gate-leakage current and an instrument noise floor, emulating
  the HP4155A measurements of Figure 3.  Model fitting (Figure 4) runs
  against these curves, not against the golden model directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.devices.tft_level61 import UnifiedTft
from repro.units import EPS_R_AL2O3, NANO, oxide_capacitance_per_area

#: Gate-dielectric capacitance per area of the 50 nm ALD Al2O3 stack.
PENTACENE_CI = oxide_capacitance_per_area(EPS_R_AL2O3, 50 * NANO)

#: Geometry of the measured test structure (Figure 3), metres.
TEST_W = 1000e-6
TEST_L = 80e-6

#: Supply rails used throughout the organic cell library (Section 4.3.3).
ORGANIC_VDD = 5.0
ORGANIC_VSS = -15.0

# The parameters below are calibrated (scipy fsolve against the extraction
# routines in repro.devices.extraction, noiseless curves) so that the
# *extracted* figures of merit equal the paper's Section 4.1 values exactly:
# mu_lin = 0.16 cm^2/Vs, SS = 350 mV/dec, on/off = 1e6, and
# VT(VDS = -1 V) = -1.3 V physical.  The drain-bias VT sign flip is
# preserved (extracted VT(VDS = -10 V) = +0.9 V vs the paper's +1.3 V);
# pushing it further would need a DIBL strong enough to visibly degrade
# the inverters' off-state beyond what the paper's Figure 6/7 power
# numbers allow, so the circuit-facing behaviour wins the tie.
PENTACENE = UnifiedTft(
    polarity=-1,
    mu_band=1.0779e-5,
    ci=PENTACENE_CI,
    # Near-zero threshold at zero drain bias ("near the 0 V regime"),
    # with a drain-induced threshold shift that, combined with the
    # linear-extrapolation VT methodology, reproduces the measured
    # -1.3 V -> +1.3 V shift between VDS = -1 V and -10 V.
    vt0=0.1030,
    vt_dibl=-0.033,
    gamma=0.3,
    vaa=5.0,
    ss=0.3128,
    # Early (contact-limited) saturation, widely observed in OTFTs.
    alpha_sat=0.7,
    m_sat=2.5,
    lambda_=0.008,
    # Leakage floor sized for a 1e6 on/off ratio on the test structure.
    i_off_w=2.627e-9,
    # Shadow-mask S/D patterning leaves ~5 um of gate overlap per edge.
    c_overlap=PENTACENE_CI * 5e-6,
    name="pentacene",
)


def pentacene_model(vt_shift: float = 0.0, mu_scale: float = 1.0) -> UnifiedTft:
    """A pentacene device with an optional VT shift / mobility scale.

    Used by the process-variation studies; ``vt_shift`` is in the
    normalised frame (positive shifts make the device harder to turn on).
    """
    if mu_scale <= 0:
        raise ValueError(f"mu_scale must be positive, got {mu_scale}")
    return replace(PENTACENE, vt0=PENTACENE.vt0 + vt_shift,
                   mu_band=PENTACENE.mu_band * mu_scale)


@dataclass(frozen=True)
class TransferCurve:
    """A measured (or synthetic) ID-VGS transfer curve.

    Voltages are *physical* p-type values (VGS negative turns the device
    on); currents are magnitudes, as plotted in the paper's Figure 3.
    """

    vgs: np.ndarray
    id_: np.ndarray
    ig: np.ndarray
    vds: float
    w: float
    l: float

    def __len__(self) -> int:
        return len(self.vgs)


def measured_transfer_curve(vds: float = -1.0,
                            vgs: np.ndarray | None = None,
                            w: float = TEST_W, l: float = TEST_L,
                            noise: float = 0.05,
                            seed: int = 2017) -> TransferCurve:
    """Synthesise a probe-station ID-VGS sweep of the golden device.

    Parameters mirror the paper's measurement: ``vds`` in physical (p-type,
    negative) volts, gate swept from +10 V to -10 V by default.  Returns
    magnitudes with multiplicative log-normal device noise and an
    instrument floor of ~10 fA, plus a small gate-leakage trace.
    """
    if vgs is None:
        vgs = np.linspace(10.0, -10.0, 201)
    rng = np.random.default_rng(seed)

    vds_n = -vds  # normalised frame for the p-type device
    if vds_n < 0:
        raise ValueError("pentacene measurements use negative (p-type) vds")

    currents = np.empty_like(vgs)
    for i, v in enumerate(vgs):
        vgs_n = -v
        i_d, _, _ = PENTACENE.ids(vgs_n, vds_n, w, l)
        currents[i] = i_d

    log_noise = rng.normal(0.0, noise, size=currents.shape)
    noisy = currents * np.exp(log_noise)
    floor = 10e-15 * np.exp(rng.normal(0.0, 0.5, size=currents.shape))
    id_measured = noisy + floor

    # Gate leakage: displacement/dielectric leakage growing with |VGS|.
    ig = 2e-12 * (np.abs(vgs) / 10.0) ** 2 + 5e-14
    ig = ig * np.exp(rng.normal(0.0, 0.3, size=ig.shape))

    return TransferCurve(vgs=np.asarray(vgs, dtype=float), id_=id_measured,
                         ig=ig, vds=vds, w=w, l=l)
