"""Device models: the paper's Section 3-4 substrate.

This subpackage replaces the authors' fabricated pentacene OTFTs and their
HSPICE device decks:

- :mod:`repro.devices.mosfet_level1` — SPICE level 1 (Shichman-Hodges),
- :mod:`repro.devices.tft_level61` — a unified accumulation-mode TFT model
  in the spirit of the level 61 RPI a-Si TFT model (power-law mobility,
  subthreshold conduction, leakage floor, drain-induced VT shift),
- :mod:`repro.devices.pentacene` — the golden pentacene device matching
  every DC figure reported in the paper plus a synthetic measurement
  generator (the stand-in for the probe-station data),
- :mod:`repro.devices.silicon` — 45 nm-class silicon MOSFETs for the
  reduced comparison library,
- :mod:`repro.devices.extraction` — mobility/VT/SS extraction and
  least-squares model fitting (Figure 4),
- :mod:`repro.devices.variation` — process-variation sampling,
- :mod:`repro.devices.materials` — alternative organic semiconductors
  (DNTT) for the retargeting extension.
"""

from repro.devices.mosfet_level1 import Level1Mosfet
from repro.devices.tft_level61 import UnifiedTft
from repro.devices.pentacene import (
    PENTACENE,
    pentacene_model,
    measured_transfer_curve,
    TransferCurve,
)
from repro.devices.silicon import silicon_nmos_45, silicon_pmos_45, SILICON_VDD
from repro.devices.extraction import (
    extract_linear_mobility,
    extract_threshold_voltage,
    extract_subthreshold_slope,
    extract_on_off_ratio,
    fit_level1,
    fit_level61,
    FitResult,
)
from repro.devices.variation import VariationModel
from repro.devices.materials import dntt_model, MATERIALS

__all__ = [
    "Level1Mosfet",
    "UnifiedTft",
    "PENTACENE",
    "pentacene_model",
    "measured_transfer_curve",
    "TransferCurve",
    "silicon_nmos_45",
    "silicon_pmos_45",
    "SILICON_VDD",
    "extract_linear_mobility",
    "extract_threshold_voltage",
    "extract_subthreshold_slope",
    "extract_on_off_ratio",
    "fit_level1",
    "fit_level61",
    "FitResult",
    "VariationModel",
    "dntt_model",
    "MATERIALS",
]
