"""Process-variation sampling for organic devices.

The paper reports that "the typical spread of threshold voltage across the
sample is within 0.5 V" (Section 4.1) and motivates the biased-load /
pseudo-E designs partly by their tunability against such variation
(Section 4.3.3).  This module samples per-device parameter perturbations
for Monte Carlo noise-margin and yield studies (a DESIGN.md extension).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.devices.tft_level61 import UnifiedTft


@dataclass(frozen=True)
class VariationModel:
    """Gaussian device-to-device variation.

    ``vt_spread`` is interpreted as the paper does: the total spread
    ("within 0.5 V") taken as +/- 2 sigma, so ``sigma_vt = vt_spread/4``.
    ``mu_sigma_rel`` is the relative (log-normal) mobility sigma; organic
    films typically show 10-30% device-to-device current variation.
    """

    vt_spread: float = 0.5
    mu_sigma_rel: float = 0.15

    def __post_init__(self) -> None:
        if self.vt_spread < 0 or self.mu_sigma_rel < 0:
            raise ValueError("variation magnitudes must be >= 0")

    @property
    def sigma_vt(self) -> float:
        return self.vt_spread / 4.0

    def sample(self, base: UnifiedTft, rng: np.random.Generator) -> UnifiedTft:
        """One perturbed device instance."""
        dvt = rng.normal(0.0, self.sigma_vt)
        mu_factor = float(np.exp(rng.normal(0.0, self.mu_sigma_rel)))
        return replace(base, vt0=base.vt0 + dvt,
                       mu_band=base.mu_band * mu_factor)

    def sample_many(self, base: UnifiedTft, n: int,
                    seed: int = 0) -> list[UnifiedTft]:
        """*n* independent device instances (deterministic per seed)."""
        rng = np.random.default_rng(seed)
        return [self.sample(base, rng) for _ in range(n)]
