"""Device characterisation and model fitting (paper Sections 4.1-4.2).

Mirrors what the authors do with their probe-station data:

- extract linear mobility, threshold voltage, subthreshold slope, and
  on/off ratio from an ID-VGS transfer curve (Section 4.1 / Figure 3),
- fit a level 1 (Shichman-Hodges) model and a level 61-style unified TFT
  model to the curve and quantify the fit quality (Section 4.2 /
  Figure 4).  The level 1 fit is good above threshold but has no
  subthreshold conduction or leakage, so its full-range log-domain error
  is large — that asymmetry is the figure's message and is asserted by the
  reproduction tests.

All functions here work in the normalised n-type frame (on-state at
positive overdrive); :func:`characterize_curve` adapts the physical p-type
measurement data from :mod:`repro.devices.pentacene`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import least_squares
from scipy.signal import savgol_filter

from repro.devices.mosfet_level1 import Level1Mosfet
from repro.devices.pentacene import TransferCurve
from repro.devices.tft_level61 import UnifiedTft
from repro.errors import ExtractionError

#: Instrument floor used when taking logs of currents that may be zero.
_LOG_FLOOR = 1e-14


def _as_normalised(curve: TransferCurve) -> tuple[np.ndarray, np.ndarray, float]:
    """Physical p-type sweep -> ascending normalised (vgs, id, vds)."""
    vgs_n = -np.asarray(curve.vgs, dtype=float)
    id_ = np.abs(np.asarray(curve.id_, dtype=float))
    order = np.argsort(vgs_n)
    return vgs_n[order], id_[order], -curve.vds


def _denoise(id_: np.ndarray) -> np.ndarray:
    """Measurement-noise suppression before differentiation.

    Probe-station sweeps carry multiplicative device noise; gradients of
    raw data are useless.  Smooth log-current (noise is log-normal) with a
    Savitzky-Golay filter, as extraction software does.
    """
    if len(id_) < 15:
        return id_
    logi = np.log10(np.maximum(id_, _LOG_FLOOR))
    window = min(15, len(id_) - (1 - len(id_) % 2))
    smooth = savgol_filter(logi, window_length=window, polyorder=2)
    return 10.0 ** smooth


def _linear_region_fit(vgs_n: np.ndarray, id_: np.ndarray,
                       fraction: float = 0.4) -> tuple[float, float]:
    """Least-squares line through the strong-conduction part of the sweep.

    Returns ``(slope, intercept)`` of ``id = slope * vgs + intercept`` fit
    over the points where the current exceeds *fraction* of its maximum.
    Fitting a line over many points is the standard "linear extrapolation"
    extraction and is robust to multiplicative measurement noise (unlike
    point-wise gradients).
    """
    i_max = float(np.max(id_))
    mask = id_ >= fraction * i_max
    if mask.sum() < 5:
        raise ExtractionError(
            "too few strong-conduction points for a linear-region fit"
        )
    slope, intercept = np.polyfit(vgs_n[mask], id_[mask], deg=1)
    if slope <= 0:
        raise ExtractionError("transfer curve has no positive transconductance")
    return float(slope), float(intercept)


def extract_linear_mobility(vgs_n: np.ndarray, id_: np.ndarray, vds_n: float,
                            w: float, l: float, ci: float) -> float:
    """Linear-region mobility (m^2/Vs) from the linear-extrapolation slope.

    mu_lin = gm * L / (W * Ci * VDS) with gm the slope of the line fitted
    through the strong-conduction region — the extraction the paper quotes
    as "extrapolated from the linear region of the ID-VGS curve".
    """
    if vds_n <= 0:
        raise ExtractionError("linear mobility extraction needs vds > 0 (normalised)")
    if len(vgs_n) < 5:
        raise ExtractionError("need at least 5 sweep points")
    slope, _ = _linear_region_fit(vgs_n, id_)
    return slope * l / (w * ci * vds_n)


def extract_threshold_voltage(vgs_n: np.ndarray, id_: np.ndarray,
                              vds_n: float) -> float:
    """Threshold by linear extrapolation of the strong-conduction region.

    VT = x-intercept of the fitted line minus VDS/2 (normalised frame).
    """
    slope, intercept = _linear_region_fit(vgs_n, id_)
    return float(-intercept / slope - 0.5 * vds_n)


def extract_subthreshold_slope(vgs_n: np.ndarray, id_: np.ndarray,
                               decades_lo: float = 1.5,
                               decades_hi: float = 4.5) -> float:
    """Subthreshold slope in V/decade over a mid-subthreshold window.

    The window spans ``decades_lo``..``decades_hi`` decades above the
    curve's minimum current, avoiding both the leakage floor and the
    near-threshold rolloff.  Returns the steepest (minimum) slope found,
    matching the convention in the paper's Figure 3 annotation.
    """
    logi = np.log10(np.maximum(_denoise(id_), _LOG_FLOOR))
    lo = logi.min() + decades_lo
    hi = min(logi.min() + decades_hi, logi.max() - 0.5)
    if hi <= lo:
        raise ExtractionError("curve spans too few decades for SS extraction")
    mask = (logi >= lo) & (logi <= hi)
    if mask.sum() < 4:
        raise ExtractionError("too few points in the subthreshold window")
    dlog = np.gradient(logi[mask], vgs_n[mask])
    dlog_pos = dlog[dlog > 1e-6]
    if len(dlog_pos) == 0:
        raise ExtractionError("no rising region in the subthreshold window")
    return float(1.0 / np.max(dlog_pos))


def extract_on_off_ratio(id_: np.ndarray) -> float:
    """On/off ratio: max over min current in the sweep."""
    i_min = float(np.min(np.abs(id_)))
    i_max = float(np.max(np.abs(id_)))
    if i_min <= 0:
        i_min = _LOG_FLOOR
    return i_max / i_min


@dataclass(frozen=True)
class DeviceReport:
    """Physical-frame summary of a measured transfer curve (Section 4.1)."""

    mobility_cm2: float
    threshold_v: float          # physical p-type VT (negative = enhancement)
    subthreshold_slope_mv_dec: float
    on_off_ratio: float
    vds: float


def characterize_curve(curve: TransferCurve, ci: float) -> DeviceReport:
    """Extract all Section 4.1 figures of merit from a physical sweep."""
    vgs_n, id_, vds_n = _as_normalised(curve)
    mu = extract_linear_mobility(vgs_n, id_, vds_n, curve.w, curve.l, ci)
    vt_n = extract_threshold_voltage(vgs_n, id_, vds_n)
    ss = extract_subthreshold_slope(vgs_n, id_)
    ratio = extract_on_off_ratio(id_)
    return DeviceReport(
        mobility_cm2=mu * 1e4,
        threshold_v=-vt_n,
        subthreshold_slope_mv_dec=ss * 1e3,
        on_off_ratio=ratio,
        vds=curve.vds,
    )


# ---------------------------------------------------------------------------
# Model fitting (Figure 4)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting a device model to a transfer curve."""

    model: Level1Mosfet | UnifiedTft
    level: int
    rms_log_error: float          # RMS of log10 residual over the full sweep
    rms_log_error_on: float       # same, restricted to the on region
    params: dict[str, float] = field(default_factory=dict)

    def predict(self, vgs_n: np.ndarray, vds_n: float, w: float, l: float
                ) -> np.ndarray:
        """Model current across a normalised gate sweep."""
        out = np.empty(len(vgs_n))
        for i, v in enumerate(vgs_n):
            out[i] = self.model.ids(float(v), vds_n, w, l)[0]
        return out


def _log_errors(pred: np.ndarray, meas: np.ndarray,
                on_mask: np.ndarray) -> tuple[float, float]:
    log_pred = np.log10(np.maximum(pred, _LOG_FLOOR))
    log_meas = np.log10(np.maximum(meas, _LOG_FLOOR))
    resid = log_pred - log_meas
    full = float(np.sqrt(np.mean(resid ** 2)))
    on = float(np.sqrt(np.mean(resid[on_mask] ** 2))) if on_mask.any() else full
    return full, on


def fit_level1(curve: TransferCurve, ci: float) -> FitResult:
    """Fit a Shichman-Hodges model to the on-region of the sweep.

    Level 1 has no subthreshold conduction, so the fit is performed only
    where the device is clearly on (top two decades of current); the
    returned ``rms_log_error`` is still evaluated over the *whole* sweep,
    quantifying Figure 4's "insufficient to describe the OTFTs" point.
    """
    vgs_n, id_, vds_n = _as_normalised(curve)
    on_mask = id_ > id_.max() * 1e-2

    def residual(theta: np.ndarray) -> np.ndarray:
        kp, vt0 = theta
        model = Level1Mosfet(polarity=-1, kp=kp, vt0=vt0, ci=ci)
        pred = np.array([model.ids(v, vds_n, curve.w, curve.l)[0]
                         for v in vgs_n[on_mask]])
        scale = id_[on_mask].max()
        return (pred - id_[on_mask]) / scale

    kp0 = 1e-8
    result = least_squares(residual, x0=[kp0, 1.0],
                           bounds=([1e-12, -10.0], [1e-3, 10.0]))
    kp, vt0 = result.x
    model = Level1Mosfet(polarity=-1, kp=float(kp), vt0=float(vt0), ci=ci)
    pred = np.array([model.ids(v, vds_n, curve.w, curve.l)[0] for v in vgs_n])
    full, on = _log_errors(pred, id_, on_mask)
    return FitResult(model=model, level=1, rms_log_error=full,
                     rms_log_error_on=on,
                     params={"kp": float(kp), "vt0": float(vt0)})


def fit_level61(curve: TransferCurve, ci: float,
                gamma: float = 0.3) -> FitResult:
    """Fit the unified TFT model over the full sweep in log-current space.

    Free parameters: band mobility, threshold, subthreshold slope, and
    leakage floor.  The mobility power ``gamma`` is held at its physical
    prior (fitting it is degenerate with mobility on a single curve, as in
    real TFT extraction practice).
    """
    vgs_n, id_, vds_n = _as_normalised(curve)
    on_mask = id_ > id_.max() * 1e-2
    log_meas = np.log10(np.maximum(id_, _LOG_FLOOR))

    def make_model(theta: np.ndarray) -> UnifiedTft:
        mu, vt0, ss, log_ioff = theta
        return UnifiedTft(polarity=-1, mu_band=mu, ci=ci, vt0=vt0,
                          vt_dibl=0.0, gamma=gamma, vaa=5.0, ss=ss,
                          alpha_sat=1.0, m_sat=2.5,
                          i_off_w=10.0 ** log_ioff, name="level61_fit")

    def residual(theta: np.ndarray) -> np.ndarray:
        model = make_model(theta)
        pred = np.array([model.ids(v, vds_n, curve.w, curve.l)[0]
                         for v in vgs_n])
        return np.log10(np.maximum(pred, _LOG_FLOOR)) - log_meas

    x0 = np.array([1e-5, 1.3, 0.35, -9.0])
    bounds = ([1e-8, -5.0, 0.05, -13.0], [1e-3, 5.0, 2.0, -5.0])
    result = least_squares(residual, x0=x0, bounds=bounds)
    model = make_model(result.x)
    pred = np.array([model.ids(v, vds_n, curve.w, curve.l)[0] for v in vgs_n])
    full, on = _log_errors(pred, id_, on_mask)
    return FitResult(
        model=model, level=61, rms_log_error=full, rms_log_error_on=on,
        params={"mu_band": float(result.x[0]), "vt0": float(result.x[1]),
                "ss": float(result.x[2]), "i_off_w": float(10.0 ** result.x[3])},
    )
