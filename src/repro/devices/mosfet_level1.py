"""SPICE level 1 (Shichman-Hodges) MOSFET model.

The paper fits a level 1 model first (Section 4.2) and observes that it
"does not produce effects such as sub-VT conduction and leakage current",
making it insufficient for OTFTs — exactly the behaviour this class has:
zero current below threshold, square-law above.

All voltages are in the normalised n-type frame (see
:mod:`repro.spice.elements`); the element handles polarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceModelError


@dataclass(frozen=True)
class Level1Mosfet:
    """Shichman-Hodges square-law MOSFET.

    Parameters
    ----------
    polarity:
        +1 for n-type, -1 for p-type (used by the circuit element).
    kp:
        Transconductance parameter ``mu * Ci`` in A/V^2.
    vt0:
        Threshold voltage (normalised frame, volts).
    lambda_:
        Channel-length modulation, 1/V.
    ci:
        Gate capacitance per area, F/m^2 (for load modelling).
    c_overlap:
        Gate-source/drain overlap capacitance per metre of width, F/m.
    """

    polarity: int
    kp: float
    vt0: float
    lambda_: float = 0.0
    ci: float = 0.0
    c_overlap: float = 0.0

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise DeviceModelError(f"polarity must be +1 or -1, got {self.polarity}")
        if self.kp <= 0:
            raise DeviceModelError(f"kp must be positive, got {self.kp}")
        if self.lambda_ < 0:
            raise DeviceModelError(f"lambda_ must be >= 0, got {self.lambda_}")

    def ids(self, vgs: float, vds: float, w: float, l: float
            ) -> tuple[float, float, float]:
        """Return ``(id, gm, gds)`` in the normalised frame (``vds >= 0``)."""
        beta = self.kp * w / l
        vov = vgs - self.vt0
        if vov <= 0.0:
            return 0.0, 0.0, 0.0
        clm = 1.0 + self.lambda_ * vds
        if vds < vov:
            # Triode region.
            core = vov * vds - 0.5 * vds * vds
            i = beta * core * clm
            gm = beta * vds * clm
            gds = beta * ((vov - vds) * clm + core * self.lambda_)
        else:
            # Saturation.
            core = 0.5 * vov * vov
            i = beta * core * clm
            gm = beta * vov * clm
            gds = beta * core * self.lambda_
        return i, gm, gds

    def ids_array(self, vgs: np.ndarray, vds: np.ndarray, w: np.ndarray,
                  l: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-valued :meth:`ids`: evaluate many bias points in one call.

        Inputs broadcast; the triode/saturation/cutoff branches become
        masks, so results match the scalar path to rounding error.
        """
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vgs, vds, w, l = np.broadcast_arrays(vgs, vds, w, l)

        beta = self.kp * w / l
        vov = vgs - self.vt0
        clm = 1.0 + self.lambda_ * vds
        triode = vds < vov

        core_t = vov * vds - 0.5 * vds * vds
        core_s = 0.5 * vov * vov
        core = np.where(triode, core_t, core_s)
        i = beta * core * clm
        gm = beta * np.where(triode, vds, vov) * clm
        gds = np.where(triode,
                       beta * ((vov - vds) * clm + core_t * self.lambda_),
                       beta * core_s * self.lambda_)

        on = vov > 0.0
        zero = np.zeros_like(i)
        return (np.where(on, i, zero), np.where(on, gm, zero),
                np.where(on, gds, zero))

    def capacitances(self, w: float, l: float) -> tuple[float, float, float]:
        """Small-signal ``(cgs, cgd, cds)`` using the split-channel convention."""
        c_channel = self.ci * w * l
        c_ov = self.c_overlap * w
        return 0.5 * c_channel + c_ov, 0.5 * c_channel + c_ov, 0.0

    def gate_capacitance(self, w: float, l: float) -> float:
        """Total gate input capacitance, used for fanout load estimates."""
        cgs, cgd, _ = self.capacitances(w, l)
        return cgs + cgd
