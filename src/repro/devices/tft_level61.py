"""Unified accumulation-mode thin-film-transistor model.

This is the repro implementation of the paper's "level 61" device model
(Section 4.2).  The RPI a-Si TFT model (SPICE level 61) was chosen by the
authors because it is "designed for a 3-terminal accumulation mode
transistor, with adequate parameters to describe carrier mobility, the
sub-VT region, and leakage current characteristics".  This class implements
those same ingredients in a single smooth equation set:

- power-law gate-voltage-dependent mobility
  ``mu_eff = mu_band * (vgte / vaa) ** gamma``,
- a softplus effective overdrive ``vgte`` that interpolates smoothly
  between exponential subthreshold conduction (with a configurable,
  *observed* subthreshold slope) and the above-threshold power law,
- an asymptotically saturating effective drain voltage ``vdse``
  (alpha-power-style knee, smoothness set by ``m_sat``),
- channel-length modulation,
- a drain-bias-dependent threshold (``vt_dibl``) reproducing the paper's
  measured VT shift from -1.3 V (VDS = 1 V) to +1.3 V (VDS = 10 V),
- an ohmic-at-origin leakage floor that sets the on/off ratio.

All analytic derivatives (``gm``, ``gds``) are exact; the test suite checks
them against finite differences with hypothesis.

Voltages are in the normalised n-type frame; the :class:`repro.spice.Fet`
element flips signs for p-type devices (pentacene is p-type).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceModelError

_LN10 = math.log(10.0)
#: Drain-voltage scale over which the leakage floor turns on (volts).
_V_LEAK = 0.1


def _softplus(z: float) -> tuple[float, float]:
    """Numerically safe ``softplus(z) = ln(1 + e^z)`` and its derivative."""
    if z > 40.0:
        return z, 1.0
    if z < -40.0:
        ez = math.exp(z)
        return ez, ez
    ez = math.exp(z)
    return math.log1p(ez), ez / (1.0 + ez)


def _softplus_array(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_softplus`, branch-for-branch identical."""
    ez = np.exp(np.minimum(z, 40.0))
    sp = np.where(z > 40.0, z, np.where(z < -40.0, ez, np.log1p(ez)))
    sig = np.where(z > 40.0, 1.0, np.where(z < -40.0, ez, ez / (1.0 + ez)))
    return sp, sig


@dataclass(frozen=True)
class UnifiedTft:
    """Unified TFT model; also serves as the silicon alpha-power-law model.

    Parameters
    ----------
    polarity:
        +1 n-type, -1 p-type.
    mu_band:
        Band mobility in m^2/(V s).
    ci:
        Gate-dielectric capacitance per area, F/m^2.
    vt0:
        Zero-drain-bias threshold (normalised frame), volts.
    vt_dibl:
        Threshold shift per volt of drain bias (dVT/dVds, usually <= 0).
    gamma:
        Mobility power-law exponent.  The saturation current scales as
        ``vgte ** (2 + gamma)``; gamma < 0 emulates velocity-saturated
        short-channel silicon (alpha-power with alpha = 2 + gamma).
    vaa:
        Mobility normalisation voltage, volts.
    ss:
        *Observed* saturation-region subthreshold slope, volts/decade.
    alpha_sat:
        Saturation voltage as a fraction of overdrive (vdsat = alpha*vgte).
    m_sat:
        Knee sharpness of the triode/saturation transition.
    lambda_:
        Channel-length modulation, 1/V.
    i_off_w:
        Leakage floor per metre of channel width, A/m.
    c_overlap:
        Gate-S/D overlap capacitance per metre of width, F/m.
    name:
        Label used in reports.
    """

    polarity: int
    mu_band: float
    ci: float
    vt0: float
    vt_dibl: float = 0.0
    gamma: float = 0.3
    vaa: float = 5.0
    ss: float = 0.35
    alpha_sat: float = 1.0
    m_sat: float = 2.5
    lambda_: float = 0.0
    i_off_w: float = 0.0
    c_overlap: float = 0.0
    name: str = "tft"

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise DeviceModelError(f"polarity must be +1 or -1, got {self.polarity}")
        for field_name in ("mu_band", "ci", "vaa", "ss", "alpha_sat", "m_sat"):
            if getattr(self, field_name) <= 0:
                raise DeviceModelError(f"{field_name} must be positive")
        if self.gamma <= -2.0:
            raise DeviceModelError("gamma must exceed -2 (alpha-power alpha > 0)")
        if self.i_off_w < 0 or self.lambda_ < 0 or self.c_overlap < 0:
            raise DeviceModelError("i_off_w, lambda_, c_overlap must be >= 0")

    # -- derived quantities ----------------------------------------------------

    @property
    def n_vth(self) -> float:
        """Subthreshold ideality voltage chosen so the *observed* saturation
        subthreshold slope equals ``ss`` volts/decade."""
        return (2.0 + self.gamma) * self.ss / _LN10

    def threshold(self, vds: float) -> float:
        """Drain-bias-dependent threshold voltage (normalised frame)."""
        return self.vt0 + self.vt_dibl * vds

    # -- I-V -------------------------------------------------------------------

    def ids(self, vgs: float, vds: float, w: float, l: float
            ) -> tuple[float, float, float]:
        """Return ``(id, gm, gds)``; expects normalised ``vds >= 0``."""
        nvth = self.n_vth
        vt = self.threshold(vds)
        z = (vgs - vt) / nvth
        sp, sig = _softplus(z)
        vgte = nvth * sp
        dvgte_dvgs = sig
        dvgte_dvds = -sig * self.vt_dibl

        beta = (w / l) * self.mu_band * self.ci / (self.vaa ** self.gamma)
        m = self.m_sat
        vsat = self.alpha_sat * vgte

        # Effective drain voltage vdse = vds * (1 + (vds/vsat)^m)^(-1/m),
        # with an asymptotic branch for vds >> vsat (avoids overflow when
        # the device is barely on and vsat is tiny).
        # ratio == 0 covers both vds == 0 and subnormal vds underflowing
        # against a normal vsat; the deep-triode limit applies to both.
        ratio = vds / vsat if vds > 0.0 else 0.0
        if ratio <= 0.0:
            vdse = 0.0
            dvdse_dvds = 1.0
            dvdse_dvsat = 0.0
        else:
            log_u = m * math.log(ratio)
            if log_u > 60.0:
                vdse = vsat
                dvdse_dvds = 0.0
                dvdse_dvsat = 1.0
            else:
                u = math.exp(log_u)
                base = (1.0 + u) ** (-1.0 / m)
                vdse = vds * base
                dvdse_dvds = (1.0 + u) ** (-1.0 - 1.0 / m)
                dvdse_dvsat = vds * (u / vsat) * (1.0 + u) ** (-1.0 - 1.0 / m)

        clm = 1.0 + self.lambda_ * vds
        p = 1.0 + self.gamma
        vgte_p = vgte ** p
        i_ch = beta * vgte_p * vdse * clm

        di_dvgte = beta * p * (vgte ** self.gamma) * vdse * clm
        di_dvdse = beta * vgte_p * clm
        di_dvds_clm = beta * vgte_p * vdse * self.lambda_

        gm = (di_dvgte + di_dvdse * dvdse_dvsat * self.alpha_sat) * dvgte_dvgs
        gds = (di_dvgte * dvgte_dvds
               + di_dvdse * (dvdse_dvds
                             + dvdse_dvsat * self.alpha_sat * dvgte_dvds)
               + di_dvds_clm)

        # Leakage floor (gate-independent off current).
        if self.i_off_w > 0.0:
            x = vds / _V_LEAK
            i_leak = self.i_off_w * w * math.tanh(x)
            # sech^2 via cosh avoids the 1 - tanh^2 cancellation when the
            # leakage term is fully turned on (tanh ~ 1); past cosh's
            # overflow point sech^2 has long underflowed to zero.
            if x < 350.0:
                ch = math.cosh(x)
                g_leak = self.i_off_w * w / (ch * ch) / _V_LEAK
            else:
                g_leak = 0.0
            return i_ch + i_leak, gm, gds + g_leak
        return i_ch, gm, gds

    def batch_evaluator(self, w: np.ndarray, l: np.ndarray):
        """Compile an array-valued ``(vgs, vds) -> (id, gm, gds)`` kernel.

        All per-device constants (``beta``, subthreshold scale, leakage
        prefactors) are precomputed once for the given width/length arrays,
        so the returned callable is a short straight-line sequence of
        NumPy ops — this is what the MNA assembly calls every Newton
        iteration for every FET of a circuit at once.

        Numerics follow the scalar :meth:`ids` equations, including its
        ``log u > 60`` asymptotic branch for the ``vdse`` knee (evaluated
        as a masked lane so deep-subthreshold devices get exactly the
        scalar values).  The softplus uses the branch-free
        ``max(z,0) + log1p(e^-|z|)`` identity (equal to the scalar's
        branches to rounding error), floored at 1e-300 so a fully-off
        device cannot divide by zero.
        """
        w = np.asarray(w, dtype=float)
        l = np.asarray(l, dtype=float)
        nvth = self.n_vth
        k_z = 1.0 / nvth
        k_zd = self.vt_dibl / nvth
        z0 = self.vt0 / nvth
        beta = (w / l) * self.mu_band * self.ci / (self.vaa ** self.gamma)
        p = 1.0 + self.gamma
        beta_p = beta * p
        alpha = self.alpha_sat
        k_vsat = alpha * nvth
        m = self.m_sat
        e_pow = -1.0 - 1.0 / m
        lam = self.lambda_
        vt_dibl = self.vt_dibl
        leak_i = self.i_off_w * w
        leak_g = leak_i / _V_LEAK

        def evaluate(vgs: np.ndarray, vds: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            with np.errstate(divide="ignore", over="ignore",
                             invalid="ignore", under="ignore"):
                z = vgs * k_z - vds * k_zd - z0
                # Branch-free softplus and logistic derivative.
                sp = np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))
                np.maximum(sp, 1e-300, out=sp)
                sig = np.exp(z - sp)
                vgte = nvth * sp
                vsat = k_vsat * sp

                # vdse = vds * (1 + (vds/vsat)^m)^(-1/m).  Deep lanes
                # (log u > 60) take the scalar branch's asymptotic values
                # exactly; u is clamped there only so the unused
                # closed-form results cannot overflow.
                log_u = m * np.log(vds / vsat)
                deep = log_u > 60.0
                u = np.exp(np.minimum(log_u, 60.0))
                t = 1.0 + u
                base_pow = t ** e_pow
                vdse = np.where(deep, vsat, vds * (base_pow * t))
                # Factored with base_pow * u innermost: that product is
                # <= 1 and vds * (base_pow * u) ~ vsat, so no intermediate
                # can overflow even when vsat is near the softplus floor.
                dvdse_dvsat = np.where(deep, 1.0,
                                       (vds * (base_pow * u)) / vsat)
                base_pow = np.where(deep, 0.0, base_pow)  # d vdse / d vds

                clm = 1.0 + lam * vds
                vgte_p = vgte ** p
                bc = beta * clm
                i0 = bc * vgte_p                   # d i / d vdse
                i_ch = i0 * vdse
                di_dvgte = (beta_p * clm) * (vgte_p / vgte) * vdse

                gm = (di_dvgte + i0 * (dvdse_dvsat * alpha)) * sig
                dvgte_dvds = sig * (-vt_dibl)
                gds = (di_dvgte * dvgte_dvds
                       + i0 * (base_pow + (dvdse_dvsat * alpha) * dvgte_dvds)
                       + i_ch * (lam / clm))
                # vds == 0: the logs above produce -inf -> u = 0 -> vdse = 0
                # and correct derivatives, but 0 * inf NaNs must not leak.
                if self.i_off_w > 0.0:
                    x_leak = vds * (1.0 / _V_LEAK)
                    i_ch = i_ch + leak_i * np.tanh(x_leak)
                    ch = np.cosh(x_leak)
                    gds = gds + leak_g / (ch * ch)
            return i_ch, gm, gds

        return evaluate

    def ids_array(self, vgs: np.ndarray, vds: np.ndarray, w: np.ndarray,
                  l: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-valued :meth:`ids`: evaluate many bias points in one call.

        All inputs broadcast.  Results match the scalar path to rounding
        error (see :meth:`batch_evaluator` for the two negligible guard
        differences).
        """
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vgs, vds, w, l = np.broadcast_arrays(vgs, vds, w, l)
        return self.batch_evaluator(w, l)(vgs, vds)

    # -- capacitances ------------------------------------------------------------

    def capacitances(self, w: float, l: float) -> tuple[float, float, float]:
        """Small-signal ``(cgs, cgd, cds)`` with the split-channel convention."""
        c_channel = self.ci * w * l
        c_ov = self.c_overlap * w
        return 0.5 * c_channel + c_ov, 0.5 * c_channel + c_ov, 0.0

    def gate_capacitance(self, w: float, l: float) -> float:
        """Total gate input capacitance (fanout load estimate)."""
        cgs, cgd, _ = self.capacitances(w, l)
        return cgs + cgd


class StackedTftParams:
    """Parameter arrays for a *heterogeneous* batch of :class:`UnifiedTft`s.

    :meth:`UnifiedTft.batch_evaluator` compiles one model's constants for
    many devices; the ensemble engine (:mod:`repro.spice.ensemble`)
    additionally stacks devices whose **models differ member to member**
    (Monte-Carlo ``vt0``/``mu_band`` perturbations, mixed n/p devices of
    one circuit).  This class broadcasts every model parameter to a
    per-device array and evaluates the same branch-free equations as
    ``batch_evaluator``, so a lane's values match the homogeneous batched
    path (and the scalar :meth:`UnifiedTft.ids`) to rounding error.

    ``subset`` gathers the arrays for a device subset, which is how the
    ensemble's masked active set re-narrows its kernels as members finish.
    """

    _FIELDS = ("_k_z", "_k_zd", "_z0", "_nvth", "_beta", "_p", "_beta_p",
               "_alpha", "_k_vsat", "_m", "_e_pow", "_lam", "_vt_dibl",
               "_leak_i", "_leak_g")

    def __init__(self, models: "list[UnifiedTft] | tuple[UnifiedTft, ...]",
                 w: np.ndarray, l: np.ndarray) -> None:
        w = np.asarray(w, dtype=float)
        l = np.asarray(l, dtype=float)

        def arr(attr: str) -> np.ndarray:
            return np.array([getattr(m, attr) for m in models], dtype=float)

        nvth = np.array([m.n_vth for m in models])
        mu_band, ci, gamma = arr("mu_band"), arr("ci"), arr("gamma")
        vaa, vt0 = arr("vaa"), arr("vt0")
        self._nvth = nvth
        self._k_z = 1.0 / nvth
        self._vt_dibl = arr("vt_dibl")
        self._k_zd = self._vt_dibl / nvth
        self._z0 = vt0 / nvth
        self._beta = (w / l) * mu_band * ci / (vaa ** gamma)
        self._p = 1.0 + gamma
        self._beta_p = self._beta * self._p
        self._alpha = arr("alpha_sat")
        self._k_vsat = self._alpha * nvth
        self._m = arr("m_sat")
        self._e_pow = -1.0 - 1.0 / self._m
        self._lam = arr("lambda_")
        self._leak_i = arr("i_off_w") * w
        self._leak_g = self._leak_i / _V_LEAK
        self._any_leak = bool(np.any(self._leak_i > 0.0))

    def subset(self, idx: np.ndarray) -> "StackedTftParams":
        """A gathered copy covering only the devices selected by *idx*."""
        sub = object.__new__(StackedTftParams)
        for field_name in self._FIELDS:
            setattr(sub, field_name, getattr(self, field_name)[idx])
        sub._any_leak = bool(np.any(sub._leak_i > 0.0))
        return sub

    def __len__(self) -> int:
        return len(self._beta)

    def evaluate(self, vgs: np.ndarray, vds: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(id, gm, gds)`` for per-device normalised bias points.

        Same equation sequence as :meth:`UnifiedTft.batch_evaluator`'s
        compiled kernel, with every model constant a per-device array.
        """
        with np.errstate(divide="ignore", over="ignore",
                         invalid="ignore", under="ignore"):
            z = vgs * self._k_z - vds * self._k_zd - self._z0
            sp = np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))
            np.maximum(sp, 1e-300, out=sp)
            sig = np.exp(z - sp)
            vgte = self._nvth * sp
            vsat = self._k_vsat * sp

            log_u = self._m * np.log(vds / vsat)
            deep = log_u > 60.0
            u = np.exp(np.minimum(log_u, 60.0))
            t = 1.0 + u
            base_pow = t ** self._e_pow
            vdse = np.where(deep, vsat, vds * (base_pow * t))
            dvdse_dvsat = np.where(deep, 1.0, (vds * (base_pow * u)) / vsat)
            base_pow = np.where(deep, 0.0, base_pow)

            clm = 1.0 + self._lam * vds
            vgte_p = vgte ** self._p
            i0 = (self._beta * clm) * vgte_p
            i_ch = i0 * vdse
            di_dvgte = (self._beta_p * clm) * (vgte_p / vgte) * vdse

            gm = (di_dvgte + i0 * (dvdse_dvsat * self._alpha)) * sig
            dvgte_dvds = sig * (-self._vt_dibl)
            gds = (di_dvgte * dvgte_dvds
                   + i0 * (base_pow + (dvdse_dvsat * self._alpha) * dvgte_dvds)
                   + i_ch * (self._lam / clm))
            if self._any_leak:
                x_leak = vds * (1.0 / _V_LEAK)
                i_ch = i_ch + self._leak_i * np.tanh(x_leak)
                ch = np.cosh(x_leak)
                gds = gds + self._leak_g / (ch * ch)
        return i_ch, gm, gds
