"""45 nm-class silicon MOSFETs for the reduced comparison library.

The paper compares against a "trimmed 6 gate TSMC 45 nm standard cell
library".  We model the underlying devices with the same
:class:`~repro.devices.tft_level61.UnifiedTft` equations configured as an
alpha-power-law short-channel MOSFET (alpha = 2 + gamma ~ 1.3, strong
velocity saturation, ~100 mV/dec subthreshold slope, ~100 mV/V DIBL).

Target figures of merit (checked by calibration tests, approximate):

- NMOS on-current ~ 1 mA/um at VDD = 1.1 V, PMOS roughly half,
- off-current ~ 100 nA/um (high-performance process corner),
- FO4 inverter delay in the ~10-20 ps range.
"""

from __future__ import annotations

from repro.devices.tft_level61 import UnifiedTft

#: Nominal 45 nm supply voltage.
SILICON_VDD = 1.1

#: Drawn channel length, metres.
SILICON_L = 45e-9

#: Gate capacitance per area: ~1.2 nm EOT high-k stack.
SILICON_CI = 0.029  # F/m^2


def silicon_nmos_45() -> UnifiedTft:
    """NMOS device for the reduced 45 nm library."""
    return UnifiedTft(
        polarity=+1,
        mu_band=6.3e-3,
        ci=SILICON_CI,
        vt0=0.35,
        vt_dibl=-0.10,
        gamma=-0.7,          # alpha-power alpha = 1.3 (velocity saturated)
        vaa=1.0,
        ss=0.100,
        alpha_sat=0.45,
        m_sat=2.0,
        lambda_=0.15,
        i_off_w=0.10,        # 100 nA/um leakage floor
        c_overlap=3.0e-10,   # ~0.3 fF/um overlap + fringe
        name="si45_nmos",
    )


def silicon_pmos_45() -> UnifiedTft:
    """PMOS device for the reduced 45 nm library (about half the drive)."""
    return UnifiedTft(
        polarity=-1,
        mu_band=3.1e-3,
        ci=SILICON_CI,
        vt0=0.35,
        vt_dibl=-0.10,
        gamma=-0.7,
        vaa=1.0,
        ss=0.105,
        alpha_sat=0.45,
        m_sat=2.0,
        lambda_=0.15,
        i_off_w=0.05,
        c_overlap=3.0e-10,
        name="si45_pmos",
    )
