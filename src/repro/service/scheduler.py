"""Job scheduler: slots, persistent workers, in-flight dedup.

Two tiers of concurrency:

- **job slots** — a small thread pool (``slots``) running whole jobs
  concurrently; threads spend their time waiting on worker processes,
  so a handful of slots keeps the pool saturated without oversubscribing
  the machine;
- one **persistent** :class:`repro.runtime.executor.WorkerPool` shared
  by every slot: each job runs inside ``use_pool``, so all the
  ``parallel_map`` fan-outs it performs (characterisation arcs, sweep
  configs, DSE grid points) shard onto the same warm worker processes
  instead of paying pool start-up per map.

Deduplication happens at two levels, both keyed on the job fingerprint:

1. **in-flight** — a duplicate of a queued/running job attaches to the
   existing record as an extra waiter (compute once, fan the result to
   every waiter);
2. **warm** — a job whose fingerprint has a persistent cache entry is
   answered immediately without touching a slot.

Progress: each slot stamps its thread with ``progress.set_context(job
id)`` and the scheduler registers one progress sink, so heartbeat
records emitted anywhere under a job (phase begin/tick/end from nested
``parallel_map`` calls) are routed to that job's record ring and to any
streaming subscribers.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.runtime import executor, progress, telemetry
from repro.runtime.cache import ResultCache
from repro.runtime.log import get_logger
from repro.service.jobs import JobSpec, normalize_request, run_job
from repro.service.store import JobRecord, JobStore

__all__ = ["Scheduler"]

_logger = get_logger(__name__)


class Scheduler:
    """Accept specs, dedup, execute on slots over a persistent pool."""

    def __init__(self, slots: int = 2, workers: int | None = None,
                 cache: ResultCache | None = None,
                 use_cache: bool = True) -> None:
        self.slots = max(1, int(slots))
        self.store = JobStore(cache=cache, use_cache=use_cache)
        self.pool = executor.WorkerPool(workers)
        self._threads = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-job")
        self._lock = threading.RLock()
        self._inflight: dict[str, str] = {}      # fingerprint -> job id
        self._subscribers: dict[str, list[Callable[[dict], None]]] = {}
        self._closed = False
        self.stats = {"submitted": 0, "deduped": 0, "cached": 0,
                      "computed": 0, "failed": 0}
        progress.add_sink(self._progress_sink)

    # -- submission -----------------------------------------------------------

    def submit(self, request: Any) -> tuple[JobRecord, bool]:
        """Normalise and accept a request.

        Returns ``(record, created)``: *created* is False when the
        request deduplicated onto an in-flight job's record.  Raises
        :class:`repro.service.jobs.JobError` on a malformed request.
        """
        spec = normalize_request(request)
        return self.submit_spec(spec)

    def submit_spec(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        fingerprint = spec.fingerprint()
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            self.stats["submitted"] += 1
            telemetry.count("service.jobs.submitted")
            # 1. In-flight dedup: attach to the live record.
            live_id = self._inflight.get(fingerprint)
            if live_id is not None:
                record = self.store.get(live_id)
                if record is not None and not record.terminal:
                    record.waiters += 1
                    self.stats["deduped"] += 1
                    telemetry.count("service.jobs.deduped")
                    return record, False
            # 2. Warm path: answer from the persistent cache.
            hit, result = self.store.lookup_cached(fingerprint)
            if hit:
                record = self.store.create(spec, fingerprint)
                record.state = "done"
                record.result = result
                record.cached = True
                record.finished_at = time.time()
                record.done.set()
                self.stats["cached"] += 1
                telemetry.count("service.jobs.cached")
                self._notify(record.id, {"event": "done", "id": record.id})
                return record, True
            # 3. Cold path: new record, queue for a slot.
            record = self.store.create(spec, fingerprint)
            self._inflight[fingerprint] = record.id
        self._threads.submit(self._execute, record)
        return record, True

    # -- execution ------------------------------------------------------------

    def _execute(self, record: JobRecord) -> None:
        record.state = "running"
        record.started_at = time.time()
        previous_ctx = progress.set_context(record.id)
        try:
            with executor.use_pool(self.pool):
                with telemetry.span(f"job:{record.spec.kind}", job=record.id):
                    result = run_job(record.spec, workers=self.pool.workers)
            record.result = result
            record.state = "done"
            self.stats["computed"] += 1
            telemetry.count("service.jobs.computed")
        except Exception as exc:  # noqa: BLE001 - reported to the client
            record.error = f"{type(exc).__name__}: {exc}"
            record.state = "failed"
            self.stats["failed"] += 1
            telemetry.count("service.jobs.failed")
            _logger.warning("job %s (%s) failed: %s", record.id,
                            record.spec.kind, record.error)
        finally:
            progress.set_context(previous_ctx)
            record.finished_at = time.time()
            self.store.store_result(record)
            with self._lock:
                if self._inflight.get(record.fingerprint) == record.id:
                    del self._inflight[record.fingerprint]
            record.done.set()
            self._notify(record.id, {"event": "done", "id": record.id})

    # -- progress routing -----------------------------------------------------

    def _progress_sink(self, rec: dict) -> None:
        job_id = rec.get("ctx")
        if not job_id:
            return
        record = self.store.get(job_id)
        if record is not None:
            record.progress.append(dict(rec))
        self._notify(job_id, {"event": "progress", "id": job_id,
                              "progress": dict(rec)})

    def subscribe(self, job_id: str,
                  fn: Callable[[dict], None]) -> None:
        """Stream progress/done events for *job_id* to *fn*.

        Subscribing to an already-terminal job fires the done event
        immediately (no missed wakeups).
        """
        record = self.store.get(job_id)
        with self._lock:
            self._subscribers.setdefault(job_id, []).append(fn)
        if record is not None and record.terminal:
            fn({"event": "done", "id": job_id})

    def unsubscribe(self, job_id: str,
                    fn: Callable[[dict], None]) -> None:
        with self._lock:
            subs = self._subscribers.get(job_id, [])
            if fn in subs:
                subs.remove(fn)
            if not subs:
                self._subscribers.pop(job_id, None)

    def _notify(self, job_id: str, event: dict) -> None:
        with self._lock:
            subs = list(self._subscribers.get(job_id, ()))
        for fn in subs:
            try:
                fn(event)
            except Exception:                # noqa: BLE001 - subscriber bug
                pass                         # must not break the job

    # -- queries --------------------------------------------------------------

    def wait(self, job_id: str, timeout: float | None = None
             ) -> JobRecord | None:
        """Block until *job_id* is terminal (or *timeout*); its record."""
        record = self.store.get(job_id)
        if record is None:
            return None
        record.done.wait(timeout)
        return record

    def stats_snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "jobs": dict(self.stats),
                "inflight": len(self._inflight),
                "slots": self.slots,
                "workers": self.pool.workers,
                "cache": {"enabled": self.store.use_cache,
                          "hits": self.store.cache.hits,
                          "misses": self.store.cache.misses},
            }

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drain queued jobs, stop the slots, shut the worker pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        progress.remove_sink(self._progress_sink)
        self._threads.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
