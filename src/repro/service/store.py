"""In-memory job records plus the persistent warm-result seam.

A :class:`JobRecord` is the unit everything else points at: the
scheduler mutates it as the job progresses, the daemon serialises it to
clients, duplicate submissions attach to it as extra waiters.  The
:class:`JobStore` owns the records (bounded, oldest-terminal evicted
first) and fronts the shared :class:`repro.runtime.cache.ResultCache`
under the ``service_jobs`` category, so a result computed once — by
this daemon or an earlier one — serves every later identical request
without recomputation.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any

from repro.runtime.cache import ResultCache, default_cache
from repro.service.jobs import JOB_SCHEMA, JobSpec

__all__ = ["CACHE_CATEGORY", "JobRecord", "JobStore"]

#: Persistent-cache category for completed job results.
CACHE_CATEGORY = "service_jobs"

#: Retained terminal records (running/queued records are never evicted).
DEFAULT_KEEP = 256

#: Progress heartbeats retained per job for late status queries.
PROGRESS_KEEP = 32


class JobRecord:
    """One submitted job's full lifecycle."""

    __slots__ = ("id", "spec", "fingerprint", "state", "submitted_at",
                 "started_at", "finished_at", "result", "error", "cached",
                 "waiters", "progress", "done")

    def __init__(self, job_id: str, spec: JobSpec, fingerprint: str) -> None:
        self.id = job_id
        self.spec = spec
        self.fingerprint = fingerprint
        self.state = "queued"           # queued | running | done | failed
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: Any = None
        self.error: str | None = None
        self.cached = False             # served from the persistent cache
        self.waiters = 1                # clients attached (dedup fan-out)
        self.progress: deque[dict] = deque(maxlen=PROGRESS_KEEP)
        self.done = threading.Event()

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def describe(self, with_result: bool = False) -> dict[str, Any]:
        """JSON-safe status view (optionally embedding the result)."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "cached": self.cached,
            "waiters": self.waiters,
            "submitted_at": round(self.submitted_at, 3),
        }
        if self.started_at is not None:
            out["started_at"] = round(self.started_at, 3)
        if self.finished_at is not None:
            out["finished_at"] = round(self.finished_at, 3)
            out["elapsed_seconds"] = round(
                self.finished_at - (self.started_at or self.submitted_at), 4)
        if self.error is not None:
            out["error"] = self.error
        if self.progress:
            out["progress"] = self.progress[-1]
        if with_result and self.state == "done":
            out["result"] = self.result
        return out


class JobStore:
    """Thread-safe record registry + persistent result cache front."""

    def __init__(self, cache: ResultCache | None = None,
                 use_cache: bool = True, keep: int = DEFAULT_KEEP) -> None:
        self.cache = cache if cache is not None else default_cache()
        self.use_cache = bool(use_cache) and self.cache.enabled
        self.keep = max(1, int(keep))
        self._records: OrderedDict[str, JobRecord] = OrderedDict()
        self._lock = threading.Lock()
        self._counter = 0

    # -- records --------------------------------------------------------------

    def create(self, spec: JobSpec, fingerprint: str) -> JobRecord:
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter}-{fingerprint[:8]}"
            record = JobRecord(job_id, spec, fingerprint)
            self._records[job_id] = record
            self._evict_locked()
            return record

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def jobs(self) -> list[JobRecord]:
        """All retained records, oldest first."""
        with self._lock:
            return list(self._records.values())

    def _evict_locked(self) -> None:
        # Drop oldest *terminal* records past the retention bound; live
        # records (queued/running) are load-bearing and never evicted.
        excess = len(self._records) - self.keep
        if excess <= 0:
            return
        for job_id in [jid for jid, rec in self._records.items()
                       if rec.terminal][:excess]:
            del self._records[job_id]

    # -- persistent results ---------------------------------------------------

    def lookup_cached(self, fingerprint: str) -> tuple[bool, Any]:
        """(hit, result) from the persistent cache for *fingerprint*."""
        if not self.use_cache:
            return False, None
        entry = self.cache.get(CACHE_CATEGORY, fingerprint)
        if (isinstance(entry, dict) and entry.get("schema") == JOB_SCHEMA
                and "result" in entry):
            return True, entry["result"]
        return False, None

    def store_result(self, record: JobRecord) -> None:
        """Persist a completed job's result for future warm serving."""
        if not self.use_cache or record.state != "done":
            return
        try:
            self.cache.put(CACHE_CATEGORY, record.fingerprint, {
                "schema": JOB_SCHEMA,
                "kind": record.spec.kind,
                "params": record.spec.param_dict(),
                "result": record.result,
            })
        except OSError:                      # pragma: no cover - disk full
            pass
