"""Characterization-as-a-service: daemon, scheduler, job store, client.

The batch CLI answers one question per process; the ROADMAP's north
star — serve a million design-point requests a day — needs a
long-running service.  This package hosts it:

- :mod:`repro.service.jobs` — job kinds (characterize / sweep / sta /
  dse), request normalisation, content-addressed fingerprints, and the
  runners that produce JSON-safe results bit-identical to the one-shot
  CLI path;
- :mod:`repro.service.store` — in-memory job records plus the
  persistent-result seam (completed jobs land in the shared
  :mod:`repro.runtime.cache`, so repeat traffic is served warm);
- :mod:`repro.service.scheduler` — job slots over a persistent
  :class:`repro.runtime.executor.WorkerPool`, in-flight deduplication
  by fingerprint, per-job progress routing;
- :mod:`repro.service.daemon` — the asyncio ndjson-over-socket front
  end (``python -m repro serve``);
- :mod:`repro.service.client` — a small synchronous client
  (``python -m repro submit``).
"""

from repro.service.jobs import JobError, JobSpec, normalize_request, run_job
from repro.service.scheduler import Scheduler
from repro.service.store import JobRecord, JobStore

__all__ = [
    "JobError",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "Scheduler",
    "normalize_request",
    "run_job",
]
