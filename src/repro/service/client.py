"""Synchronous ndjson client for the characterization service.

The daemon speaks one-JSON-object-per-line (:mod:`repro.service.daemon`);
this client wraps a socket in that framing for scripts, tests, the CI
smoke leg, and ``python -m repro submit``.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable

__all__ = ["ServiceClient", "parse_address"]


def parse_address(address: str) -> tuple[str, int] | str:
    """``"host:port"`` -> tuple; anything else is a unix socket path."""
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit() and "/" not in address:
        return (host or "127.0.0.1", int(port))
    return address


class ServiceClient:
    """One connection to the daemon; requests are sequential."""

    def __init__(self, address: tuple[str, int] | str,
                 timeout: float | None = None) -> None:
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address)
        else:
            self._sock = socket.create_connection(address, timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- framing --------------------------------------------------------------

    def _send(self, obj: dict) -> None:
        self._file.write((json.dumps(obj) + "\n").encode())
        self._file.flush()

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def request(self, obj: dict) -> dict:
        """One request, one reply."""
        self._send(obj)
        return self._recv()

    # -- ops ------------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def submit(self, job: dict, wait: bool = True, stream: bool = False,
               on_progress: Callable[[dict], None] | None = None
               ) -> dict[str, Any]:
        """Submit a job; with *wait* (default) return the ``done`` reply.

        The ``accepted`` event's dedup/cached flags are merged into the
        returned dict.  *on_progress* receives each ``progress`` event
        when *stream* is set.
        """
        self._send({"op": "submit", "job": job, "wait": wait,
                    "stream": stream or on_progress is not None})
        accepted = self._recv()
        if not accepted.get("ok"):
            return accepted
        if not wait:
            return accepted
        while True:
            event = self._recv()
            if event.get("event") == "done":
                event.setdefault("dedup", accepted.get("dedup"))
                event["accepted_cached"] = accepted.get("cached")
                return event
            if event.get("event") == "progress" and on_progress is not None:
                on_progress(event.get("progress", {}))

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "id": job_id})

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        msg: dict[str, Any] = {"op": "result", "id": job_id}
        if timeout is not None:
            msg["timeout"] = timeout
        return self.request(msg)

    def jobs(self) -> dict:
        return self.request({"op": "jobs"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
