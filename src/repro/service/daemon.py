"""The asyncio front end: ndjson request/response over a local socket.

Protocol: one JSON object per line, in both directions.  Each request
carries an ``"op"``; replies carry ``"ok"`` plus op-specific fields.
A connection is sequential (one request at a time); concurrent clients
open concurrent connections — the scheduler behind the daemon is the
shared, thread-safe part.

Ops:

- ``ping`` — liveness probe;
- ``submit`` — ``{"op": "submit", "job": {"kind", "params"},
  "wait": bool, "stream": bool}``.  Replies first with an ``accepted``
  event (job id, fingerprint, whether it deduplicated onto an in-flight
  job or was served from the warm cache); with ``wait`` (default) the
  connection then carries optional ``progress`` events (``stream``)
  and finally one ``done`` event embedding the result or error;
- ``status`` — a job's current record (no result);
- ``result`` — block until a job is terminal, reply with the result;
- ``jobs`` — all retained records;
- ``stats`` — scheduler + cache counters;
- ``shutdown`` — reply ``bye``, drain running jobs, exit the daemon.

The daemon thread is the only asyncio party; scheduler callbacks from
job threads are bridged onto the loop with ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

from repro.runtime.log import get_logger
from repro.service.jobs import JobError, job_kinds
from repro.service.scheduler import Scheduler

__all__ = ["ServiceDaemon"]

_logger = get_logger(__name__)

#: Bound on one request line (a job request is tiny; results are large
#: but flow daemon->client, unlimited).
MAX_REQUEST_BYTES = 1 << 20


class ServiceDaemon:
    """Serve a :class:`Scheduler` over TCP (localhost) or a unix socket."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1",
                 port: int = 0, socket_path: str | None = None) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.bound: tuple[str, int] | str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown: asyncio.Event | None = None

    # -- wire helpers ---------------------------------------------------------

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, obj: dict) -> None:
        writer.write((json.dumps(obj) + "\n").encode())
        await writer.drain()

    # -- request handlers -----------------------------------------------------

    async def _handle_submit(self, msg: dict,
                             writer: asyncio.StreamWriter) -> None:
        try:
            record, created = self.scheduler.submit(msg.get("job"))
        except JobError as exc:
            await self._send(writer, {"ok": False, "error": str(exc),
                                      "kinds": job_kinds()})
            return
        accepted = {
            "ok": True,
            "event": "accepted",
            "id": record.id,
            "fingerprint": record.fingerprint,
            "state": record.state,
            "dedup": not created,
            "cached": record.cached,
        }
        wait = bool(msg.get("wait", True))
        stream = bool(msg.get("stream", False))
        if not wait:
            await self._send(writer, accepted)
            return
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[dict] = asyncio.Queue()

        def relay(event: dict) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        # Subscribe before acknowledging, so a client that acts on the
        # accepted event can never miss a progress record.
        self.scheduler.subscribe(record.id, relay)
        await self._send(writer, accepted)
        try:
            while True:
                event = await queue.get()
                if event.get("event") == "done":
                    break
                if stream:
                    await self._send(writer, {"ok": True, **event})
        finally:
            self.scheduler.unsubscribe(record.id, relay)
        reply = {"ok": record.state == "done", "event": "done",
                 "dedup": not created}
        reply.update(record.describe(with_result=True))
        await self._send(writer, reply)

    async def _handle_result(self, msg: dict,
                             writer: asyncio.StreamWriter) -> None:
        job_id = str(msg.get("id", ""))
        record = self.scheduler.store.get(job_id)
        if record is None:
            await self._send(writer, {"ok": False,
                                      "error": f"unknown job {job_id!r}"})
            return
        timeout = msg.get("timeout")
        await asyncio.get_running_loop().run_in_executor(
            None, record.done.wait,
            float(timeout) if timeout is not None else None)
        reply = {"ok": record.state == "done", "event": "done"}
        reply.update(record.describe(with_result=True))
        await self._send(writer, reply)

    async def _handle_one(self, msg: dict,
                          writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request; True asks the daemon to shut down."""
        op = msg.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "op": "pong",
                                      "kinds": job_kinds()})
        elif op == "submit":
            await self._handle_submit(msg, writer)
        elif op == "status":
            record = self.scheduler.store.get(str(msg.get("id", "")))
            if record is None:
                await self._send(writer, {"ok": False,
                                          "error": "unknown job"})
            else:
                await self._send(writer, {"ok": True,
                                          **record.describe()})
        elif op == "result":
            await self._handle_result(msg, writer)
        elif op == "jobs":
            await self._send(writer, {
                "ok": True,
                "jobs": [r.describe() for r in self.scheduler.store.jobs()]})
        elif op == "stats":
            await self._send(writer, {"ok": True,
                                      **self.scheduler.stats_snapshot()})
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "op": "bye"})
            return True
        else:
            await self._send(writer, {
                "ok": False,
                "error": f"unknown op {op!r}; expected one of ping/submit/"
                         f"status/result/jobs/stats/shutdown"})
        return False

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    msg = json.loads(line)
                    if not isinstance(msg, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await self._send(writer, {"ok": False,
                                              "error": f"bad request: {exc}"})
                    continue
                if await self._handle_one(msg, writer):
                    assert self._shutdown is not None
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass                             # client went away mid-reply
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- lifecycle ------------------------------------------------------------

    async def _serve(self, ready: threading.Event | None) -> None:
        self._shutdown = asyncio.Event()
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._client, path=self.socket_path,
                limit=MAX_REQUEST_BYTES)
            self.bound = self.socket_path
        else:
            self._server = await asyncio.start_server(
                self._client, host=self.host, port=self.port,
                limit=MAX_REQUEST_BYTES)
            sock = self._server.sockets[0].getsockname()
            self.bound = (sock[0], sock[1])
        _logger.info("service: serving on %s", self.bound)
        print(f"serving on {self.bound}", flush=True)
        if ready is not None:
            ready.set()
        async with self._server:
            await self._shutdown.wait()
        # Drain: running jobs finish, queued jobs execute, workers stop.
        await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.close)

    def run(self, ready: threading.Event | None = None) -> None:
        """Serve until a ``shutdown`` request arrives (blocking).

        *ready* (if given) is set once the socket is listening — the
        seam tests and the CI smoke leg use to start the daemon on a
        background thread and know when to connect.
        """
        asyncio.run(self._serve(ready))
