"""Service job kinds: normalisation, fingerprints, and runners.

A *job* is a small JSON request (``{"kind": ..., "params": {...}}``)
naming one of the batch entry points the CLI already exposes.  This
module is the contract between the wire and the engine:

- :func:`normalize_request` validates a request and canonicalises its
  parameters (defaults filled in, unknown keys rejected, lists sorted
  into tuples) so that *equivalent* requests produce the **same**
  :class:`JobSpec` — and therefore the same fingerprint, which is what
  in-flight dedup and the warm-result cache key on;
- :meth:`JobSpec.fingerprint` is the content-addressed identity of a
  job (schema-versioned, via :meth:`ResultCache.key`);
- :func:`run_job` executes a spec by calling the *same* library entry
  points as the one-shot CLI, then projects the result onto plain
  JSON-safe data.  JSON floats round-trip exactly, so a daemon response
  is bit-identical to running the job locally.

Thread-safety: the synthesis layer memoises shared structure
(:func:`map_cached` netlists, STA sessions, the generic-netlist cache)
in plain dicts that are *not* safe under concurrent mutation, so every
runner that touches synthesis serialises on :data:`SYNTHESIS_LOCK`.
Characterisation is transistor-level (no synthesis state) and runs
unlocked.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.runtime.cache import ResultCache

__all__ = [
    "JOB_SCHEMA",
    "JobError",
    "JobSpec",
    "SYNTHESIS_LOCK",
    "job_kinds",
    "normalize_request",
    "register_kind",
    "run_job",
]

#: Version of the job request/result layout, folded into fingerprints so
#: a payload-shape change can never serve stale cached results.
JOB_SCHEMA = 1

#: Serialises every runner that touches the synthesis layer's shared
#: in-process memos (mapped netlists, STA sessions, generic blocks).
SYNTHESIS_LOCK = threading.RLock()


class JobError(ValueError):
    """A malformed or unsupported job request."""


@dataclass(frozen=True)
class JobSpec:
    """A validated, canonical job: kind plus sorted parameter pairs."""

    kind: str
    params: tuple[tuple[str, Any], ...]

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def fingerprint(self) -> str:
        """Content-addressed identity; equal specs share it."""
        return ResultCache.key({"schema": JOB_SCHEMA, "kind": self.kind,
                                "params": self.param_dict()})

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": self.param_dict()}


# -- parameter validation helpers ---------------------------------------------

def _choice(params: dict, name: str, choices: tuple[str, ...],
            default: str | None = None) -> str:
    value = params.get(name, default)
    if value not in choices:
        raise JobError(f"param {name!r} must be one of {list(choices)}, "
                       f"got {value!r}")
    return value


def _int(params: dict, name: str, default: int, lo: int, hi: int) -> int:
    value = params.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobError(f"param {name!r} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise JobError(f"param {name!r} out of range [{lo}, {hi}]: {value}")
    return value


def _bool(params: dict, name: str, default: bool) -> bool:
    value = params.get(name, default)
    if not isinstance(value, bool):
        raise JobError(f"param {name!r} must be a boolean, got {value!r}")
    return value


def _int_list(params: dict, name: str, default: tuple[int, ...],
              lo: int, hi: int) -> tuple[int, ...]:
    value = params.get(name, list(default))
    if (not isinstance(value, (list, tuple)) or not value
            or any(isinstance(v, bool) or not isinstance(v, int)
                   for v in value)):
        raise JobError(f"param {name!r} must be a non-empty integer list, "
                       f"got {value!r}")
    if any(not lo <= v <= hi for v in value):
        raise JobError(f"param {name!r} values out of range [{lo}, {hi}]: "
                       f"{list(value)}")
    return tuple(value)


def _workloads(params: dict, name: str = "workloads") -> tuple[str, ...]:
    from repro.core.workloads import WORKLOADS
    value = params.get(name, ["gzip"])
    if (not isinstance(value, (list, tuple)) or not value
            or any(not isinstance(v, str) for v in value)):
        raise JobError(f"param {name!r} must be a non-empty string list, "
                       f"got {value!r}")
    unknown = sorted(set(value) - set(WORKLOADS))
    if unknown:
        raise JobError(f"unknown workloads {unknown}; "
                       f"available: {sorted(WORKLOADS)}")
    return tuple(value)


def _reject_unknown(params: dict, known: set[str]) -> None:
    unknown = sorted(set(params) - known)
    if unknown:
        raise JobError(f"unknown params {unknown}; expected a subset of "
                       f"{sorted(known)}")


# -- result projection --------------------------------------------------------

def _physical_dict(physical) -> dict[str, Any]:
    return {
        "config_name": physical.config_name,
        "process": physical.process,
        "period": physical.period,
        "frequency": physical.frequency,
        "area": physical.area,
        "critical_region": physical.critical_region,
        "overhead": physical.overhead,
    }


def _sweep_point_dict(point) -> dict[str, Any]:
    out = {
        "config": point.config.name,
        "depth": point.config.depth,
        "physical": _physical_dict(point.physical),
        "ipc": {k: point.ipc[k] for k in sorted(point.ipc)},
        "performance": {k: point.performance[k]
                        for k in sorted(point.performance)},
        "mean_performance": point.mean_performance(),
    }
    for attr in ("front_width", "back_width"):
        if hasattr(point, attr):
            out[attr] = getattr(point, attr)
    return out


# -- libraries / wires --------------------------------------------------------

def _process_pair(process: str, wire: bool = True,
                  workers: int | None = None):
    from repro.characterization import organic_library, silicon_library
    from repro.synthesis.wires import organic_wire_model, silicon_wire_model
    if process == "organic":
        library, wire_model = (organic_library(workers=workers),
                               organic_wire_model())
    else:
        library, wire_model = (silicon_library(workers=workers),
                               silicon_wire_model())
    if not wire:
        wire_model = wire_model.scaled(0.0)
    return library, wire_model


# -- job kinds ----------------------------------------------------------------

def _normalize_characterize(params: dict) -> dict:
    _reject_unknown(params, {"process"})
    return {"process": _choice(params, "process", ("organic", "silicon"),
                               "organic")}


def _run_characterize(params: dict, workers: int | None) -> dict:
    library, _ = _process_pair(params["process"], workers=workers)
    return library.to_dict()


def _normalize_sweep(params: dict) -> dict:
    axis = _choice(params, "axis", ("depth", "width"), "depth")
    out = {
        "axis": axis,
        "process": _choice(params, "process", ("organic", "silicon"),
                           "organic"),
        "workloads": list(_workloads(params)),
        "n_instructions": _int(params, "n_instructions", 2000, 100, 200_000),
    }
    if axis == "depth":
        _reject_unknown(params, {"axis", "process", "workloads",
                                 "n_instructions", "max_depth"})
        out["max_depth"] = _int(params, "max_depth", 12, 9, 17)
    else:
        _reject_unknown(params, {"axis", "process", "workloads",
                                 "n_instructions", "front_widths",
                                 "back_widths"})
        out["front_widths"] = list(_int_list(params, "front_widths",
                                             (1, 2, 3), 1, 8))
        out["back_widths"] = list(_int_list(params, "back_widths",
                                            (3, 4, 5), 3, 10))
    return out


def _run_sweep(params: dict, workers: int | None) -> dict:
    from repro.core.tradeoffs import depth_sweep, make_traces, width_sweep
    library, wire = _process_pair(params["process"], workers=workers)
    traces = make_traces(workloads=list(params["workloads"]),
                         n_instructions=params["n_instructions"])
    with SYNTHESIS_LOCK:
        if params["axis"] == "depth":
            points = depth_sweep(library, wire,
                                 max_depth=params["max_depth"],
                                 traces=traces, workers=workers)
        else:
            points = width_sweep(library, wire,
                                 front_widths=list(params["front_widths"]),
                                 back_widths=list(params["back_widths"]),
                                 traces=traces, workers=workers)
    return {"axis": params["axis"], "process": params["process"],
            "points": [_sweep_point_dict(p) for p in points]}


_STA_BLOCKS = ("adder", "multiplier", "alu", "complex_alu")


def _normalize_sta(params: dict) -> dict:
    _reject_unknown(params, {"process", "block", "width", "wire"})
    return {
        "process": _choice(params, "process", ("organic", "silicon"),
                           "organic"),
        "block": _choice(params, "block", _STA_BLOCKS, "adder"),
        "width": _int(params, "width", 16, 2, 64),
        "wire": _bool(params, "wire", True),
    }


def _run_sta(params: dict, workers: int | None) -> dict:
    from repro.synthesis import generators
    from repro.synthesis.mapping import map_cached
    from repro.synthesis.sta import static_timing
    library, wire = _process_pair(params["process"], wire=params["wire"],
                                  workers=workers)
    width = params["width"]
    builders = {
        "adder": lambda: generators.carry_select_adder(width=width),
        "multiplier": lambda: generators.array_multiplier(width=width),
        "alu": lambda: generators.simple_alu(width=width),
        "complex_alu": lambda: generators.complex_alu(width=width),
    }
    with SYNTHESIS_LOCK:
        mapped = map_cached(builders[params["block"]]())
        report = static_timing(mapped, library, wire)
        gates = len(mapped.gates)
    return {
        "netlist": report.netlist_name,
        "gates": gates,
        "max_delay": report.max_delay,
        "critical_path": list(report.critical_path),
        "critical_length": report.critical_length,
    }


def _normalize_dse(params: dict) -> dict:
    _reject_unknown(params, {"quick"})
    return {"quick": _bool(params, "quick", True)}


def _run_dse(params: dict, workers: int | None) -> dict:
    from repro.analysis.dse import dse_sweep
    with SYNTHESIS_LOCK:
        if params["quick"]:
            # Mirrors the CLI's --quick grid exactly.
            result = dse_sweep(widths=(8, 16), width_pairs=((2, 4), (3, 5)),
                               max_depth=11, workers=workers)
        else:
            result = dse_sweep(workers=workers)
    best = result.best()
    return {
        "quick": params["quick"],
        "combos": list(result.combos),
        "n_points": len(result),
        "best": {
            "combo": best.combo,
            "config": best.config.name,
            "depth": best.config.depth,
            "data_width": best.config.data_width,
            "mean_performance": best.mean_performance(),
            "frequency": best.physical.frequency,
            "area": best.physical.area,
        },
        "best_per_combo": {
            combo: {
                "config": p.config.name,
                "depth": p.config.depth,
                "data_width": p.config.data_width,
                "mean_performance": p.mean_performance(),
            }
            for combo in result.combos
            for p in [result.best(combo)]
        },
    }


#: kind -> (normalize(params) -> canonical params, run(params, workers))
_KINDS: dict[str, tuple[Callable[[dict], dict],
                        Callable[[dict, int | None], Any]]] = {
    "characterize": (_normalize_characterize, _run_characterize),
    "sweep": (_normalize_sweep, _run_sweep),
    "sta": (_normalize_sta, _run_sta),
    "dse": (_normalize_dse, _run_dse),
}


def job_kinds() -> list[str]:
    """The registered job kinds, sorted."""
    return sorted(_KINDS)


def register_kind(kind: str,
                  normalize: Callable[[dict], dict],
                  run: Callable[[dict, int | None], Any]) -> None:
    """Register (or replace) a job kind — the test seam for synthetic
    jobs with controlled timing."""
    _KINDS[str(kind)] = (normalize, run)


def normalize_request(request: Any) -> JobSpec:
    """Validate a wire request into a canonical :class:`JobSpec`.

    Raises :class:`JobError` on anything malformed.  Two requests that
    mean the same job normalise to the same spec (and fingerprint).
    """
    if not isinstance(request, dict):
        raise JobError(f"job request must be an object, got "
                       f"{type(request).__name__}")
    _reject_unknown(request, {"kind", "params"})
    kind = request.get("kind")
    if not isinstance(kind, str) or kind not in _KINDS:
        raise JobError(f"unknown job kind {kind!r}; "
                       f"available: {job_kinds()}")
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise JobError(f"params must be an object, got "
                       f"{type(params).__name__}")
    normalize, _run = _KINDS[kind]
    canonical = normalize(dict(params))
    return JobSpec(kind=kind,
                   params=tuple(sorted(canonical.items())))


def run_job(spec: JobSpec, workers: int | None = None) -> Any:
    """Execute *spec* and return its JSON-safe result payload.

    This is the single compute path: the daemon's scheduler and the
    ``python -m repro submit --local`` one-shot both land here, which is
    what makes service responses bit-identical to local runs.
    """
    entry = _KINDS.get(spec.kind)
    if entry is None:
        raise JobError(f"unknown job kind {spec.kind!r}")
    _normalize, run = entry
    return run(spec.param_dict(), workers)
