"""Fault-injection checks: the runtime must degrade the way it claims to.

Each check injects one failure through :mod:`repro.validate.faults` and
asserts the *documented* recovery — not merely "no crash": a dead worker
re-runs serially with complete results, a corrupt cache entry is evicted
and recomputed, a hopeless Newton solve surfaces its full continuation
trail (and survives pickling back from a worker), and a machine without
a C toolchain transparently runs the pure-Python kernel.
"""

from __future__ import annotations

import os
import pickle
import tempfile

from repro.validate import faults
from repro.validate.checks import CheckContext, check, expect


@check("worker-crash-fallback", "fault")
def worker_crash_fallback(ctx: CheckContext) -> str:
    """A worker dying mid-map neither hangs the map nor drops tasks."""
    from repro.runtime.executor import parallel_map

    rng = ctx.rng()
    values = list(range(8))
    crash_on = rng.choice(values)
    tasks = [(v, crash_on, os.getpid()) for v in values]
    results = parallel_map(faults.crashy_double, tasks, workers=2)
    got = [r.unwrap() for r in results]
    expect(got == [2 * v for v in values],
           f"crash fallback dropped or reordered tasks: {got}")
    return (f"worker killed on task {crash_on}; all {len(values)} tasks "
            f"recovered serially, in order")


@check("corrupt-cache-recovery", "fault")
def corrupt_cache_recovery(ctx: CheckContext) -> str:
    """Corrupted and truncated cache entries are evicted and recomputed."""
    from repro.runtime.cache import ResultCache

    payload = {"cycles": 12345, "note": "validation payload"}
    modes = ("truncate", "garbage")
    with tempfile.TemporaryDirectory(prefix="repro-validate-") as tmp:
        cache = ResultCache(root=tmp, enabled=True)
        for mode in modes:
            key = cache.key({"check": ctx.name, "mode": mode,
                             "seed": ctx.seed})
            cache.put("validation", key, payload)
            expect(cache.get("validation", key) == payload,
                   f"[{mode}] sanity: entry unreadable before corruption")
            path = faults.corrupt_cache_entry(cache, "validation", key,
                                              mode=mode)
            expect(cache.get("validation", key) is None,
                   f"[{mode}] corrupt entry was served as a hit")
            expect(not path.exists(),
                   f"[{mode}] corrupt entry not evicted from disk")
            cache.put("validation", key, payload)
            expect(cache.get("validation", key) == payload,
                   f"[{mode}] recompute-and-store after eviction failed")
    return f"{len(modes)} corruption modes detected, evicted, recomputed"


@check("newton-event-trail", "fault")
def newton_event_trail(ctx: CheckContext) -> str:
    """A hopeless solve raises ConvergenceError with its full trail."""
    from repro.cells.library_def import organic_library_definition
    from repro.cells.topologies import build_dc_testbench
    from repro.errors import ConvergenceError
    from repro.spice.dc import operating_point

    defn = organic_library_definition()
    inv = defn.cell("inv")
    circuit = build_dc_testbench(inv, {"a": defn.vdd / 2.0})

    caught: ConvergenceError | None = None
    with faults.strangled_newton(max_iterations=1):
        try:
            operating_point(circuit)
        except ConvergenceError as exc:
            caught = exc
    expect(caught is not None,
           "starved Newton converged in one iteration — fault not injected")
    stages = [event.get("stage") for event in caught.events]
    for stage in ("newton", "gmin", "source"):
        expect(stage in stages,
               f"event trail missing the {stage!r} stage: {stages}")
    rendered = str(caught)
    expect("gmin" in rendered and "source" in rendered,
           "trail stages not rendered into the error message")
    # Workers ship failures back by pickle; the trail must survive it.
    revived = pickle.loads(pickle.dumps(caught))
    expect(revived.events == caught.events,
           "event trail lost in pickle round-trip")
    expect(str(revived) == rendered,
           "rendered message changed across pickle round-trip")
    return (f"{len(caught.events)} events across stages "
            f"{sorted(set(s for s in stages if s))}; picklable")


@check("missing-toolchain-fallback", "fault")
def missing_toolchain_fallback(ctx: CheckContext) -> str:
    """With no C compiler, the fast kernel runs pure-Python, same cycles."""
    from repro.core import ipc_native
    from repro.core.config import CoreConfig
    from repro.core.superscalar import simulate
    from repro.core.tradeoffs import make_traces

    config = CoreConfig()
    trace = make_traces(workloads=["dhrystone"], n_instructions=2_000,
                        seed=ctx.seed)["dhrystone"]
    reference = simulate(config, trace, kernel="reference")
    with tempfile.TemporaryDirectory(prefix="repro-validate-") as tmp:
        with faults.missing_native_toolchain(tmp):
            expect(not ipc_native.native_available(),
                   "native kernel still available with no compiler and an "
                   "empty kernel cache — fault not injected")
            crippled = simulate(config, trace, kernel="fast")
            expect(os.listdir(tmp) == [] or
                   all(not f.endswith(".so") for f in os.listdir(tmp)),
                   "a kernel was compiled despite the missing toolchain")
    expect(crippled.cycles == reference.cycles,
           f"python fallback kernel diverges from reference: "
           f"{crippled.cycles} != {reference.cycles}")
    return ("toolchain-less run fell back to the python kernel, "
            f"cycle-exact ({crippled.cycles} cycles)")
