"""Differential validation and fault injection (``python -m repro validate``).

The unit suite pins individual functions; this layer cross-checks whole
engines against each other and injects the failures the runtime claims
to survive.  Three check classes (see :mod:`repro.validate.checks`):

- **differential** — every fast path (batched ensembles, the packed/
  compiled IPC kernel, levelised-array STA, the persistent cache) diffed
  against its reference implementation on seeded samples;
- **invariant** — structural properties of characterised data and
  measurement code (NLDM sanity, lossless round-trips, ordered waveform
  crossings, worker-count-independent telemetry);
- **fault** — seeded fault injection via :mod:`repro.validate.faults`
  (worker crashes, corrupt cache entries, starved Newton solves, a
  missing C toolchain), asserting the documented degradation.

Usage::

    python -m repro validate --fast            # CI: seeded, minutes
    python -m repro validate --full --seed 7   # nightly: larger samples

Every check is isolated: one failure never stops the others, and the
report names each failing check with its mismatch.  Exit status is the
report's ``ok``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.runtime.log import get_logger
from repro.validate.checks import (
    CheckContext,
    CheckFailure,
    CheckResult,
    registered_checks,
)

_logger = get_logger(__name__)

__all__ = ["ValidationReport", "run_validation"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one validation run."""

    seed: int
    fast: bool
    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results) and bool(self.results)

    @property
    def n_failed(self) -> int:
        return sum(not r.ok for r in self.results)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "mode": "fast" if self.fast else "full",
            "ok": self.ok,
            "n_checks": len(self.results),
            "n_failed": self.n_failed,
            "checks": [r.to_dict() for r in self.results],
        }

    def format(self) -> str:
        """Human-readable run summary (one line per check)."""
        lines = [f"validation ({'fast' if self.fast else 'full'}, "
                 f"seed={self.seed}): "
                 f"{len(self.results) - self.n_failed}/{len(self.results)} "
                 f"checks passed"]
        width = max((len(r.name) for r in self.results), default=0)
        for r in self.results:
            status = "ok  " if r.ok else "FAIL"
            lines.append(f"  {status} [{r.kind:<12}] {r.name:<{width}} "
                         f"({r.duration_seconds:6.2f}s)  "
                         f"{r.detail if r.ok else r.error}")
        return "\n".join(lines)


def run_validation(fast: bool = True, seed: int = 0,
                   only: list[str] | None = None) -> ValidationReport:
    """Run the registered checks; never raises on a check failure.

    A :class:`~repro.validate.checks.CheckFailure` marks the check
    failed with its mismatch message; any other exception marks it
    failed as *broken* (the check itself errored) — both are reported,
    neither aborts the run.  ``only`` restricts to exact check names.
    """
    checks = registered_checks(fast=fast, only=only)
    results: list[CheckResult] = []
    for c in checks:
        ctx = CheckContext(name=c.name, seed=seed, fast=fast)
        t0 = perf_counter()
        try:
            detail = c.fn(ctx) or ""
            result = CheckResult(name=c.name, kind=c.kind, ok=True,
                                 duration_seconds=perf_counter() - t0,
                                 detail=detail)
        except CheckFailure as exc:
            result = CheckResult(name=c.name, kind=c.kind, ok=False,
                                 duration_seconds=perf_counter() - t0,
                                 error=str(exc))
        except Exception as exc:  # noqa: BLE001 - isolate broken checks
            result = CheckResult(
                name=c.name, kind=c.kind, ok=False,
                duration_seconds=perf_counter() - t0,
                error=f"check broken: {type(exc).__name__}: {exc}")
        (_logger.info if result.ok else _logger.error)(
            "check %s: %s (%.2fs)%s", c.name,
            "ok" if result.ok else "FAILED", result.duration_seconds,
            "" if result.ok else f" - {result.error}")
        results.append(result)
    return ValidationReport(seed=seed, fast=fast, results=results)
