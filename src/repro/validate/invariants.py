"""Invariant checks: structural properties the data model must satisfy.

Unlike the differential checks these have no second implementation to
diff against — they assert properties that are true of the physics and
of the serialisation contracts: characterised delays are nonnegative
and grow with load, Liberty-style round-trips are lossless, waveform
crossing extraction is ordered and direction-partitioned, and telemetry
is identical however many worker processes produced it.
"""

from __future__ import annotations

import json

import numpy as np

from repro.validate.checks import CheckContext, check, expect

#: Slack for "nonnegative" / "monotone" on characterised tables: the
#: transient measurements behind the tables are solved to much tighter
#: tolerances than this, so a violation is a real measurement bug.
_TABLE_SLACK = 1e-15


@check("nldm-tables-sane", "invariant")
def nldm_tables_sane(ctx: CheckContext) -> str:
    """Characterised delays >= 0 and monotone in load; slews > 0."""
    from repro.validate.differential import mini_organic_library

    library = mini_organic_library()
    n_tables = 0
    for cell_name, cell in sorted(library.cells.items()):
        for arc in cell.arcs:
            where = f"{cell_name}.{arc.input_pin}/{arc.output_transition}"
            delays = arc.delay.values
            expect(bool(np.all(delays >= -_TABLE_SLACK)),
                   f"negative delay in {where}: min {delays.min():g}")
            load_steps = np.diff(delays, axis=1)
            expect(bool(np.all(load_steps >= -_TABLE_SLACK)),
                   f"delay not monotone in load in {where}: "
                   f"worst step {load_steps.min():g}")
            transitions = arc.transition.values
            expect(bool(np.all(transitions > 0)),
                   f"non-positive output transition in {where}: "
                   f"min {transitions.min():g}")
            n_tables += 2
        expect(cell.leakage >= 0,
               f"negative leakage on {cell_name}: {cell.leakage:g}")
    return f"{n_tables} NLDM tables over {len(library.cells)} cells sane"


@check("library-round-trip", "invariant")
def library_round_trip(ctx: CheckContext) -> str:
    """Library -> to_dict -> from_dict -> to_dict is lossless."""
    from repro.characterization.library import Library
    from repro.validate.differential import mini_organic_library

    library = mini_organic_library()
    first = library.to_dict()
    second = Library.from_dict(first).to_dict()
    expect(first == second,
           "Library.to_dict/from_dict round-trip is not the identity")
    # The round-trip must also be JSON-stable: what lands on disk decodes
    # to the same payload (this is what the result cache relies on).
    expect(json.loads(json.dumps(first)) == first,
           "Library.to_dict payload does not survive JSON encoding")
    return (f"round-trip lossless: {len(library.cells)} cells, "
            f"{sum(len(c.arcs) for c in library.cells.values())} arcs")


@check("waveform-crossing-order", "invariant")
def waveform_crossing_order(ctx: CheckContext) -> str:
    """Crossing lists are strictly ordered, deduplicated and partitioned.

    Random piecewise-linear waveforms — with samples deliberately forced
    exactly onto the threshold, the case the pre-fix extraction double
    counted — must yield strictly increasing crossing instants, and the
    rise/fall lists must partition the ``any`` list exactly.
    """
    from repro.spice.waveform import Waveform

    rng = ctx.np_rng()
    threshold = 0.5
    n_waves = 40 if ctx.fast else 200
    n_crossings = 0
    for i in range(n_waves):
        n = int(rng.integers(4, 40))
        times = np.cumsum(rng.uniform(1e-9, 1e-6, size=n))
        values = rng.uniform(0.0, 1.0, size=n)
        # Force some samples exactly onto the threshold (runs included).
        for k in range(int(rng.integers(0, max(2, n // 4)))):
            values[int(rng.integers(0, n))] = threshold
        w = Waveform(times, values)
        rises = w.crossing_times(threshold, "rise")
        falls = w.crossing_times(threshold, "fall")
        both = w.crossing_times(threshold, "any")
        for name, arr in (("rise", rises), ("fall", falls), ("any", both)):
            expect(bool(np.all(np.diff(arr) > 0)),
                   f"wave {i}: {name} crossings not strictly increasing")
        merged = np.sort(np.concatenate([rises, falls]))
        expect(len(merged) == len(both)
               and bool(np.array_equal(merged, both)),
               f"wave {i}: rise+fall does not partition 'any' "
               f"({len(rises)}+{len(falls)} vs {len(both)})")
        n_crossings += len(both)
    expect(n_crossings > 0, "degenerate sample: no crossings generated")
    return f"{n_waves} random waveforms, {n_crossings} crossings ordered"


def _sim_task(task: tuple[int, int]) -> float:
    """Simulate one seeded trace; module-level so workers can unpickle it."""
    from repro.core.config import CoreConfig
    from repro.core.tradeoffs import make_traces

    from repro.core.superscalar import simulate

    seed, n_instructions = task
    trace = make_traces(workloads=["dhrystone"],
                        n_instructions=n_instructions,
                        seed=seed)["dhrystone"]
    return simulate(CoreConfig(), trace).ipc


@check("telemetry-serial-vs-parallel", "invariant")
def telemetry_serial_vs_parallel(ctx: CheckContext) -> str:
    """Merged worker telemetry == serial telemetry, counter for counter."""
    from repro.runtime import telemetry
    from repro.runtime.executor import parallel_map

    tasks = [(ctx.seed + i, 1_000) for i in range(4)]
    runs: dict[int, tuple[dict, list]] = {}
    enabled_before = telemetry.ENABLED
    try:
        for workers in (1, 2):
            telemetry.reset()
            telemetry.enable(True)
            results = parallel_map(_sim_task, tasks, workers=workers)
            runs[workers] = (dict(telemetry.counters()),
                             [r.unwrap() for r in results])
            telemetry.enable(False)
    finally:
        telemetry.enable(enabled_before)
        telemetry.reset()
    serial_counters, serial_values = runs[1]
    parallel_counters, parallel_values = runs[2]
    expect(serial_values == parallel_values,
           "parallel map returned different results than serial")
    expect(serial_counters == parallel_counters,
           f"telemetry counters diverge between serial and parallel runs: "
           f"serial={serial_counters}, parallel={parallel_counters}")
    expect(serial_counters.get("ipc.simulations") == len(tasks),
           f"expected {len(tasks)} simulation counts, got "
           f"{serial_counters.get('ipc.simulations')}")
    return (f"{len(serial_counters)} counters identical across "
            f"1- and 2-worker runs")
