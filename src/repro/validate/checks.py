"""Check framework for the differential-validation subsystem.

A *check* is a named, seeded, self-contained function that either
returns a human-readable detail string (pass) or raises (fail —
:class:`CheckFailure` for an expected-vs-got mismatch, any other
exception for a broken check).  Checks register themselves with the
:func:`check` decorator and are discovered by the runner in
:mod:`repro.validate`; each belongs to one of three classes:

- ``differential`` — a fast path diffed against its oracle on
  randomized inputs (ensemble vs scalar SPICE, native vs python IPC
  kernel, vector vs scalar STA, warm vs cold cache);
- ``invariant`` — structural properties that must hold of characterised
  libraries and solver outputs (nonnegative monotone NLDM delays,
  round-trip exactness, ordered waveform crossings, serial==parallel
  telemetry);
- ``fault`` — seeded fault injection (:mod:`repro.validate.faults`)
  proving graceful degradation: crashes, corrupt cache entries,
  non-converging solves, missing toolchains.

Checks must leave no trace: any environment variable, module attribute
or process-wide cache they touch is restored before they return (use
:func:`swap_env` / :func:`swap_attr`), so check order never matters and
the validation run composes with the caller's configuration.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

KINDS = ("differential", "invariant", "fault")


class CheckFailure(AssertionError):
    """A validation check found a real mismatch (not a harness bug)."""


@dataclass(frozen=True)
class CheckContext:
    """Per-check inputs: the seed and the fast/full mode switch.

    Each check gets its *own* deterministic RNG streams derived from
    ``(seed, check name)``, so adding or re-ordering checks never
    perturbs another check's draws.
    """

    name: str
    seed: int
    fast: bool

    def rng(self) -> random.Random:
        return random.Random(f"{self.name}\x00{self.seed}")

    def np_rng(self) -> np.random.Generator:
        return np.random.default_rng(
            abs(hash((self.name, self.seed))) % (2 ** 63))


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check."""

    name: str
    kind: str
    ok: bool
    duration_seconds: float
    detail: str = ""
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "duration_seconds": round(self.duration_seconds, 6),
            "detail": self.detail,
            "error": self.error,
        }


@dataclass(frozen=True)
class _Check:
    name: str
    kind: str
    fn: Callable[[CheckContext], str | None]
    fast: bool = True          # run in --fast mode (all checks run in --full)


_REGISTRY: list[_Check] = []


def check(name: str, kind: str, *, fast: bool = True):
    """Register a validation check function (decorator)."""
    if kind not in KINDS:
        raise ValueError(f"check kind must be one of {KINDS}, got {kind!r}")

    def decorator(fn: Callable[[CheckContext], str | None]):
        if any(c.name == name for c in _REGISTRY):
            raise ValueError(f"duplicate check name {name!r}")
        _REGISTRY.append(_Check(name=name, kind=kind, fn=fn, fast=fast))
        return fn

    return decorator


def registered_checks(fast: bool = True,
                      only: list[str] | None = None) -> list[_Check]:
    """Checks selected for a run, in registration order.

    Registration order is deterministic (module import order inside
    :mod:`repro.validate`); ``only`` filters by exact name.
    """
    import repro.validate.differential   # noqa: F401  (registers checks)
    import repro.validate.invariants     # noqa: F401
    import repro.validate.fault_checks   # noqa: F401

    checks = [c for c in _REGISTRY if c.fast or not fast]
    if only is not None:
        unknown = sorted(set(only) - {c.name for c in _REGISTRY})
        if unknown:
            raise ValueError(
                f"unknown check(s) {unknown}; available: "
                f"{sorted(c.name for c in _REGISTRY)}")
        checks = [c for c in checks if c.name in only]
    return checks


def expect(condition: bool, message: str) -> None:
    """Raise :class:`CheckFailure` with *message* unless *condition*."""
    if not condition:
        raise CheckFailure(message)


def expect_close(got: float, want: float, *, rel: float = 1e-9,
                 abs_tol: float = 1e-15, label: str = "value") -> None:
    """Raise :class:`CheckFailure` unless ``got`` ≈ ``want``."""
    if not np.isclose(got, want, rtol=rel, atol=abs_tol):
        raise CheckFailure(
            f"{label}: got {got!r}, want {want!r} "
            f"(rel tol {rel:g}, abs tol {abs_tol:g})")


@contextmanager
def swap_env(**updates: str | None) -> Iterator[None]:
    """Temporarily set (value) or unset (None) environment variables."""
    saved = {k: os.environ.get(k) for k in updates}
    try:
        for k, v in updates.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


@contextmanager
def swap_attr(obj, name: str, value) -> Iterator[None]:
    """Temporarily replace ``obj.name`` with *value*."""
    saved = getattr(obj, name)
    setattr(obj, name, value)
    try:
        yield
    finally:
        setattr(obj, name, saved)
