"""Seeded fault-injection primitives for the validation layer.

Each primitive patches exactly one failure point the runtime claims to
survive — a worker process dying mid-map, a cache entry corrupted on
disk, a Newton solve that cannot converge, a machine with no C
toolchain — and restores the patched state on exit.  The fault checks in
:mod:`repro.validate.fault_checks` drive these and assert the documented
degradation actually happens: fallback instead of hang, recompute
instead of poisoned result, a structured event trail instead of a bare
stack trace.

The primitives are deliberately importable on their own (no check
framework dependency) so regression tests can reuse them directly.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path
from typing import Iterator

from repro.core import ipc_native
from repro.runtime.cache import ResultCache

#: Exit code used by :func:`crashy_double` so a genuine crash is
#: distinguishable from an ordinary worker exception in post-mortems.
CRASH_EXIT_CODE = 43


def crashy_double(task: tuple[int, int, int]) -> int:
    """Double ``value`` — but die (hard) on one task when run in a worker.

    *task* is ``(value, crash_on, parent_pid)``.  When ``value ==
    crash_on`` **and** the executing process is not the parent, the
    process exits with :data:`CRASH_EXIT_CODE` via :func:`os._exit` — no
    exception, no cleanup, exactly what an OOM kill looks like to the
    pool.  In the parent (the serial fallback re-run) every task
    computes normally, so a correct fallback yields complete results.

    Module-level and argument-picklable by design: ``parallel_map``
    ships it to spawn/fork workers.
    """
    value, crash_on, parent_pid = task
    if value == crash_on and os.getpid() != parent_pid:
        os._exit(CRASH_EXIT_CODE)
    return 2 * value


def corrupt_cache_entry(cache: ResultCache, category: str, key: str,
                        mode: str = "truncate") -> Path:
    """Damage a stored cache entry in place; returns the entry path.

    ``mode='truncate'`` cuts the JSON payload mid-token (a crash during
    a non-atomic write); ``mode='garbage'`` overwrites it with bytes
    that are not JSON at all (disk corruption, foreign file).
    """
    path = cache.path_for(category, key)
    if not path.exists():
        raise FileNotFoundError(f"no cache entry to corrupt at {path}")
    if mode == "truncate":
        text = path.read_text()
        path.write_text(text[: max(1, len(text) // 2)].rstrip("}"))
    elif mode == "garbage":
        path.write_bytes(b"\x00\xffnot json\xfe" * 3)
    else:
        raise ValueError(f"mode must be 'truncate' or 'garbage', got {mode!r}")
    return path


@contextmanager
def strangled_newton(max_iterations: int = 1) -> Iterator[None]:
    """Force every Newton solve to give up after *max_iterations*.

    Wraps :func:`repro.spice.dc._newton` so the iteration budget is
    clamped for the direct attempt **and** for the gmin / source-stepping
    continuation fallbacks — the whole chain must fail, which is the
    only way to observe the complete structured event trail on the
    final :class:`~repro.errors.ConvergenceError`.
    """
    from repro.spice import dc

    original = dc._newton

    def starved(sys, G_lin, b, x0, options, gmin=0.0):
        clamped = replace(options, max_iterations=max_iterations)
        return original(sys, G_lin, b, x0, clamped, gmin=gmin)

    dc._newton = starved
    try:
        yield
    finally:
        dc._newton = original


@contextmanager
def missing_native_toolchain(scratch_dir: str | Path) -> Iterator[None]:
    """Simulate a machine with no C compiler and no prebuilt kernel.

    Two patches are needed because :func:`repro.core.ipc_native._compile`
    returns an already-cached shared object *before* looking for a
    compiler: the kernel cache directory is pointed at an empty scratch
    directory (so there is nothing prebuilt) and compiler discovery is
    forced to fail.  The cached load state is reset on entry and on exit,
    so the simulation neither sees nor leaks a previously bound kernel.
    """
    scratch = Path(scratch_dir)
    scratch.mkdir(parents=True, exist_ok=True)
    saved_dir = os.environ.get(ipc_native.NATIVE_DIR_ENV)
    saved_find = ipc_native._find_compiler
    os.environ[ipc_native.NATIVE_DIR_ENV] = str(scratch)
    ipc_native._find_compiler = lambda: None
    ipc_native.reset()
    try:
        yield
    finally:
        ipc_native._find_compiler = saved_find
        if saved_dir is None:
            os.environ.pop(ipc_native.NATIVE_DIR_ENV, None)
        else:
            os.environ[ipc_native.NATIVE_DIR_ENV] = saved_dir
        ipc_native.reset()
