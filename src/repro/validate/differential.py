"""Differential checks: every fast path diffed against its oracle.

The repo carries four "same answer, faster" engines (batched ensemble
transients, the packed-array/compiled IPC kernel, levelised-array STA,
and the persistent result cache).  Each check here runs a seeded sample
through both the fast path and its reference implementation and fails on
any disagreement beyond the documented tolerance — the tolerances are
the same ones the unit suites enforce, so a validation failure means a
real regression, not noise.
"""

from __future__ import annotations

import numpy as np

from repro.validate.checks import (
    CheckContext,
    check,
    expect,
    expect_close,
    swap_attr,
    swap_env,
)

#: Tolerance shared with the ensemble-equivalence unit suite.
ENSEMBLE_REL = 1e-9


# ---------------------------------------------------------------------------
# A small characterised library, built once per process.
#
# Differential STA and the NLDM invariants need real characterised
# tables, but a full library build (4x4 grid, setup-time bisection) is a
# minutes-scale job.  This mini build characterises the five
# combinational cells on a 2x3 grid — every code path of the harness,
# a fraction of the transients — and stubs the sequential timing, which
# no validation check reads.
# ---------------------------------------------------------------------------

_MINI_CACHE: dict = {}


def mini_organic_library():
    """A real (but small-grid) characterised organic library, memoised."""
    if "library" in _MINI_CACHE:
        return _MINI_CACHE["library"]
    from repro.cells.library_def import organic_library_definition
    from repro.characterization.harness import (
        CharacterizationGrid,
        characterize_cell,
        default_grid,
    )
    from repro.characterization.library import Library, SequentialTiming
    from repro.characterization.nldm import NldmTable

    defn = organic_library_definition()
    base = default_grid(defn)
    grid = CharacterizationGrid(
        slews=(base.slews[0], base.slews[2]),
        loads=(base.loads[0], base.loads[1], base.loads[2]))
    cells = {name: characterize_cell(defn.cell(name), grid,
                                     area=defn.cell_area(name))
             for name in defn.COMBINATIONAL}

    # Placeholder sequential timing: no validation check reads it, but
    # Library requires the field.  Values are scaled from the inverter
    # tables so they are at least dimensionally sensible.
    inv_delay = cells["inv"].arcs[0].delay
    dff = SequentialTiming(
        name="dff", input_caps={"d": defn.input_capacitance("inv", "a"),
                                "clk": defn.input_capacitance("inv", "a")},
        area=defn.cell_area("dff"),
        clk_to_q=NldmTable(inv_delay.slews.copy(), inv_delay.loads.copy(),
                           2.0 * inv_delay.values),
        setup_time=float(inv_delay.values.max()),
        hold_time=0.0, leakage=0.0)

    _MINI_CACHE["library"] = Library(
        name=f"{defn.name}-mini", process=defn.process, vdd=defn.vdd,
        cells=cells, dff=dff,
        metadata={"note": "validation mini-library; sequential timing "
                          "is a stub and must not be read by checks"})
    return _MINI_CACHE["library"]


@check("ensemble-vs-scalar-arc", "differential")
def ensemble_vs_scalar_arc(ctx: CheckContext) -> str:
    """Batched ensemble arc measurement == scalar transient measurement."""
    from repro.cells.library_def import organic_library_definition
    from repro.characterization.harness import (
        default_grid,
        measure_arc,
        measure_arc_batch,
    )

    defn = organic_library_definition()
    inv = defn.cell("inv")
    grid = default_grid(defn)
    rng = ctx.rng()
    n_points = 3 if ctx.fast else 8
    points = []
    for _ in range(n_points):
        s = rng.uniform(grid.slews[0], grid.slews[-1])
        c = rng.uniform(grid.loads[0], grid.loads[-1])
        points.append((s, c))

    compared = 0
    for input_rise in (True, False):
        with swap_env(REPRO_ENSEMBLE="0"):
            scalar = [measure_arc(inv, "a", input_rise, s, c)
                      for s, c in points]
        with swap_env(REPRO_ENSEMBLE="1"):
            batched = measure_arc_batch(inv, "a", input_rise, points)
        for (s, c), (d_ref, t_ref), (d_b, t_b) in zip(points, scalar,
                                                      batched):
            where = f"inv.a {'rise' if input_rise else 'fall'} " \
                    f"slew={s:g} load={c:g}"
            expect_close(d_b, d_ref, rel=ENSEMBLE_REL,
                         label=f"delay @ {where}")
            expect_close(t_b, t_ref, rel=ENSEMBLE_REL,
                         label=f"transition @ {where}")
            compared += 1
    return f"{compared} arc points agree to rel {ENSEMBLE_REL:g}"


@check("ensemble-vs-scalar-dc", "differential")
def ensemble_vs_scalar_dc(ctx: CheckContext) -> str:
    """Stacked VTC sweep == per-cell scalar sweeps on perturbed instances."""
    from repro.analysis.yield_mc import perturb_cell
    from repro.cells.topologies import pseudo_e_inverter
    from repro.cells.vtc import compute_vtc, compute_vtc_batch
    from repro.devices.pentacene import PENTACENE
    from repro.devices.variation import VariationModel

    base = pseudo_e_inverter(PENTACENE, vdd=15.0, vss=-15.0,
                             w_drive=100e-6, w_shift_load=10e-6,
                             l_shift_load=100e-6, w_up=100e-6,
                             w_down=50e-6)
    rng = ctx.np_rng()
    n_cells = 3 if ctx.fast else 8
    n_points = 21 if ctx.fast else 41
    cells = [perturb_cell(base, VariationModel(), rng)
             for _ in range(n_cells)]

    with swap_env(REPRO_ENSEMBLE="1"):
        batched = compute_vtc_batch(cells, n_points=n_points)
    for i, (cell, curve) in enumerate(zip(cells, batched)):
        expect(curve is not None,
               f"batched VTC abandoned instance {i} that the scalar "
               f"path should solve")
        scalar = compute_vtc(cell, n_points=n_points)
        err_v = float(np.max(np.abs(curve.vout - scalar.vout)))
        expect(np.allclose(curve.vout, scalar.vout, rtol=1e-9, atol=1e-12),
               f"VTC vout mismatch on instance {i}: max |dv| = {err_v:g}")
        expect(np.allclose(curve.power, scalar.power,
                           rtol=1e-9, atol=1e-18),
               f"VTC rail-power mismatch on instance {i}")
    return f"{n_cells} Monte Carlo instances x {n_points} bias points agree"


@check("backend-agreement", "differential")
def backend_agreement(ctx: CheckContext) -> str:
    """numpy == blocked == native (both dispatch depths) on real arcs.

    The native backend is measured twice: the whole-timestep C sweep
    (``REPRO_NATIVE_TIMESTEP=1``, the default) and the per-iteration
    Newton kernel under the Python sweep loop (``=0``).  Both must agree
    with numpy to solver tolerance on the seeded mini-grid — and with
    *each other* bitwise, which the step-schedule contract promises.
    """
    from repro.cells.library_def import organic_library_definition
    from repro.characterization.harness import default_grid, measure_arc_batch
    from repro.spice.backends import get_backend, reset_backend

    defn = organic_library_definition()
    inv = defn.cell("inv")
    grid = default_grid(defn)
    rng = ctx.rng()
    n_points = 2 if ctx.fast else 5
    points = []
    for _ in range(n_points):
        s = rng.uniform(grid.slews[0], grid.slews[-1])
        c = rng.uniform(grid.loads[0], grid.loads[-1])
        points.append((s, c))

    legs = (("numpy", "numpy", {}),
            ("blocked", "blocked", {}),
            ("native", "native", {"REPRO_NATIVE_TIMESTEP": "1"}),
            ("native-periter", "native",
             {"REPRO_NATIVE_TIMESTEP": "0"}))
    results: dict[str, list[tuple[float, float]]] = {}
    try:
        for leg, backend, extra in legs:
            with swap_env(REPRO_BACKEND=backend, REPRO_ENSEMBLE="1",
                          **extra):
                reset_backend()
                if get_backend().name != backend:
                    continue             # e.g. native without a C compiler
                results[leg] = measure_arc_batch(inv, "a", True, points)
    finally:
        reset_backend()

    expect("numpy" in results, "reference numpy backend failed to resolve")
    reference = results["numpy"]
    compared = 0
    for name, measured in results.items():
        if name == "numpy":
            continue
        # Blocked shares the reference dtype/order exactly; the compiled
        # kernel reorders floating-point work, so it gets solver tolerance.
        rel = ENSEMBLE_REL if name == "blocked" else 1e-6
        for (s, c), (d_ref, t_ref), (d_b, t_b) in zip(points, reference,
                                                      measured):
            where = f"{name} inv.a rise slew={s:g} load={c:g}"
            expect_close(d_b, d_ref, rel=rel, label=f"delay @ {where}")
            expect_close(t_b, t_ref, rel=rel, label=f"transition @ {where}")
            compared += 1
    if "native" in results and "native-periter" in results:
        expect(results["native"] == results["native-periter"],
               "whole-timestep native and per-iteration native disagree "
               "bitwise — the step-schedule contract is broken")
    backends = "+".join(sorted(results))
    return f"{backends}: {compared} arc points agree"


@check("ipc-kernel-agreement", "differential")
def ipc_kernel_agreement(ctx: CheckContext) -> str:
    """fast-python == reference == native (when present), cycle-exact."""
    from repro.core import ipc_native
    from repro.core.config import CoreConfig
    from repro.core.superscalar import simulate
    from repro.core.tradeoffs import make_traces

    n_instructions = 2_000 if ctx.fast else 12_000
    traces = make_traces(workloads=["dhrystone", "bzip"],
                         n_instructions=n_instructions, seed=ctx.seed)
    configs = [CoreConfig(), CoreConfig().widened(2, 3)]

    compared = 0
    native_compared = 0
    native_was = ipc_native.native_available()
    try:
        for config in configs:
            for name, trace in traces.items():
                where = f"{config.name}/{name}"
                reference = simulate(config, trace, kernel="reference")
                with swap_env(REPRO_NATIVE="0"):
                    ipc_native.reset()
                    python = simulate(config, trace, kernel="fast")
                expect(python.cycles == reference.cycles,
                       f"python fast kernel disagrees with reference on "
                       f"{where}: {python.cycles} != {reference.cycles}")
                expect(python.mispredicts == reference.mispredicts,
                       f"mispredict count disagrees on {where}")
                compared += 1
                if native_was:
                    ipc_native.reset()
                    native = simulate(config, trace, kernel="fast")
                    expect(native.cycles == reference.cycles,
                           f"native kernel disagrees with reference on "
                           f"{where}: {native.cycles} != {reference.cycles}")
                    native_compared += 1
    finally:
        ipc_native.reset()
    native_note = (f", native kernel on {native_compared}"
                   if native_was else ", no native kernel available")
    return (f"{compared} config x trace pairs cycle-exact"
            f"{native_note}")


@check("sta-vector-vs-scalar", "differential")
def sta_vector_vs_scalar(ctx: CheckContext) -> str:
    """Levelised-array STA == scalar STA on a synthesized block."""
    import repro.synthesis.sta as sta
    from repro.synthesis.generators import (
        carry_select_adder,
        ripple_carry_adder,
        simple_alu,
    )
    from repro.synthesis.mapping import technology_map
    from repro.synthesis.wires import organic_wire_model

    builders = {
        "rca8": lambda: ripple_carry_adder(8),
        "csa8": lambda: carry_select_adder(8),
        "alu8": lambda: simple_alu(8),
    }
    rng = ctx.rng()
    names = ([rng.choice(sorted(builders))] if ctx.fast
             else sorted(builders))
    library = mini_organic_library()
    wire = organic_wire_model()
    input_slew = library.typical_slew()

    checked = []
    for name in names:
        netlist = technology_map(builders[name]())
        vector = sta._vector_static_timing(netlist, library, wire,
                                           input_slew, None)
        expect(vector is not None,
               f"vector STA refused library it should batch ({name})")
        with swap_attr(sta, "VECTOR_MIN_GATES", 10 ** 9):
            scalar = sta.static_timing(netlist, library, wire)
        expect_close(vector.max_delay, scalar.max_delay, rel=1e-12,
                     label=f"{name} max_delay")
        expect(vector.critical_path == scalar.critical_path,
               f"{name}: critical paths diverge")
        for attr in ("arrival", "slew"):
            vec_d, ref_d = getattr(vector, attr), getattr(scalar, attr)
            expect(vec_d.keys() == ref_d.keys(),
                   f"{name}: {attr} key sets diverge")
            for key, ref_val in ref_d.items():
                expect_close(vec_d[key], ref_val, rel=1e-9,
                             label=f"{name} {attr}[{key}]")
        checked.append(f"{name}({len(netlist.gates)} gates)")
    return "engines agree on " + ", ".join(checked)


@check("sta-incremental-agreement", "differential")
def sta_incremental_agreement(ctx: CheckContext) -> str:
    """Incremental delta-retiming == full re-time, bit for bit.

    Grows a carry-select adder through a width chain with the
    incremental gate on (copy-on-extend netlists, memoised mapping,
    session-based delta STA) and diffs every report field against a
    fresh synthesis timed with the gate off.  The contract is bitwise
    identity — ``==``, no tolerance — for both the scalar and the
    vector engine.
    """
    import repro.synthesis.sta as sta
    from repro.synthesis.generators import (
        carry_select_adder,
        extend_carry_select_adder,
    )
    from repro.synthesis.mapping import (
        map_cached,
        reset_map_cache,
        technology_map,
    )
    from repro.synthesis.wires import organic_wire_model

    library = mini_organic_library()
    wire = organic_wire_model()
    widths = (8, 12) if ctx.fast else (8, 12, 16, 24)
    engines = {"scalar": 10 ** 9, "vector": 1}

    compared = 0
    for engine, min_gates in engines.items():
        with swap_attr(sta, "VECTOR_MIN_GATES", min_gates):
            with swap_env(REPRO_INCREMENTAL_STA="1"):
                sta.reset_incremental()
                reset_map_cache()
                base = carry_select_adder(widths[0])
                incremental = {widths[0]: sta.static_timing(
                    map_cached(base), library, wire)}
                for w in widths[1:]:
                    base = extend_carry_select_adder(base, w)
                    incremental[w] = sta.static_timing(
                        map_cached(base), library, wire)
                expect(len(sta._SESSIONS) > 0,
                       f"{engine}: no sessions recorded with the gate on")
            with swap_env(REPRO_INCREMENTAL_STA="0"):
                sta.reset_incremental()
                for w in widths:
                    full = sta.static_timing(
                        technology_map(carry_select_adder(w)), library,
                        wire)
                    inc = incremental[w]
                    where = f"{engine}/csa{w}"
                    expect(inc.max_delay == full.max_delay,
                           f"{where}: max_delay diverges "
                           f"({inc.max_delay!r} != {full.max_delay!r})")
                    expect(inc.critical_path == full.critical_path,
                           f"{where}: critical paths diverge")
                    for attr in ("arrival", "slew", "load", "gate_delay"):
                        expect(getattr(inc, attr) == getattr(full, attr),
                               f"{where}: {attr} not bit-identical")
                    compared += 1
            sta.reset_incremental()
            reset_map_cache()
    return (f"{compared} engine x width points bit-identical across "
            f"widths {list(widths)}")


@check("cache-warm-vs-cold", "differential")
def cache_warm_vs_cold(ctx: CheckContext) -> str:
    """A cache hit returns exactly what the cold computation produced."""
    import tempfile

    from repro.core.config import CoreConfig
    from repro.core.superscalar import simulate, simulate_cached
    from repro.core.tradeoffs import make_traces
    from repro.runtime.cache import ResultCache

    config = CoreConfig()
    trace = make_traces(workloads=["dhrystone"], n_instructions=2_000,
                        seed=ctx.seed)["dhrystone"]
    uncached = simulate(config, trace)
    with tempfile.TemporaryDirectory(prefix="repro-validate-") as tmp:
        cache = ResultCache(root=tmp, enabled=True)
        cold = simulate_cached(config, trace, cache=cache)
        expect(cache.misses == 1 and cache.hits == 0,
               f"cold run should miss exactly once "
               f"(hits={cache.hits}, misses={cache.misses})")
        warm = simulate_cached(config, trace, cache=cache)
        expect(cache.hits == 1,
               f"warm run should hit (hits={cache.hits})")
    for attr in ("instructions", "cycles", "branch_count",
                 "mispredicts", "l1_misses"):
        expect(getattr(warm, attr) == getattr(cold, attr)
               == getattr(uncached, attr),
               f"cached result field {attr} diverges: "
               f"warm={getattr(warm, attr)}, cold={getattr(cold, attr)}, "
               f"uncached={getattr(uncached, attr)}")
    expect(warm.ipc == uncached.ipc, "cached IPC not bit-identical")
    return "warm hit bit-identical to cold computation and plain simulate"
