"""Technology mapping onto the 6-cell library.

Generic gates are decomposed into {INV, NAND2, NAND3, NOR2, NOR3} with
standard minimal patterns (XOR as the 4-NAND network, MUX as 3 NAND + INV,
XNOR as the 4-NOR dual).  The mapping is purely structural; logical
equivalence is property-tested in the suite by simulating netlists before
and after mapping on random vectors.

Because each source gate lowers to a fixed pattern in topological order,
mapping is *prefix-stable*: mapping an extended netlist reproduces the
base mapping gate for gate and only appends.  :func:`map_cached` exploits
that — a fingerprint-keyed memo returns the previous mapping for an
unchanged source, and a source built with :meth:`Netlist.extend` is
mapped by extending the cached base mapping over just the suffix gates.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from repro.errors import SynthesisError
from repro.runtime import profiling
from repro.synthesis.netlist import LIBRARY_CELLS, Netlist

#: Exact lowered-cell multiset per source cell — the integer transform
#: that :func:`technology_map` realises structurally.  Kept in data form
#: so area accounting (:func:`mapped_cell_counts`) never needs to build
#: the mapped netlist.
MAPPED_CELL_COUNTS = {
    **{cell: {cell: 1} for cell in LIBRARY_CELLS},
    "buf": {"inv": 2},
    "and2": {"nand2": 1, "inv": 1},
    "and3": {"nand3": 1, "inv": 1},
    "or2": {"nor2": 1, "inv": 1},
    "or3": {"nor3": 1, "inv": 1},
    "xor2": {"nand2": 4},
    "xnor2": {"nor2": 4},
    "mux2": {"inv": 1, "nand2": 3},
}


def _map_gates(mapped: Netlist, gates, counter: int) -> int:
    """Lower *gates* into *mapped*, continuing the ``tm$`` namespace.

    Returns the final intermediate-net counter so an extension pass can
    resume numbering exactly where the base mapping stopped (that is
    what keeps extended mappings bit-identical to fresh ones).
    """

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"tm${counter}"

    for gate in gates:
        ins = gate.inputs
        out = gate.output
        cell = gate.cell
        if cell in LIBRARY_CELLS:
            mapped.add_gate(cell, ins, output=out)
        elif cell == "buf":
            mid = mapped.add_gate("inv", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "and2":
            mid = mapped.add_gate("nand2", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "and3":
            mid = mapped.add_gate("nand3", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "or2":
            mid = mapped.add_gate("nor2", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "or3":
            mid = mapped.add_gate("nor3", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "xor2":
            a, b = ins
            nab = mapped.add_gate("nand2", (a, b), output=fresh())
            t1 = mapped.add_gate("nand2", (a, nab), output=fresh())
            t2 = mapped.add_gate("nand2", (b, nab), output=fresh())
            mapped.add_gate("nand2", (t1, t2), output=out)
        elif cell == "xnor2":
            a, b = ins
            nab = mapped.add_gate("nor2", (a, b), output=fresh())
            t1 = mapped.add_gate("nor2", (a, nab), output=fresh())
            t2 = mapped.add_gate("nor2", (b, nab), output=fresh())
            mapped.add_gate("nor2", (t1, t2), output=out)
        elif cell == "mux2":
            s, a, b = ins
            ns = mapped.add_gate("inv", (s,), output=fresh())
            t1 = mapped.add_gate("nand2", (a, ns), output=fresh())
            t2 = mapped.add_gate("nand2", (b, s), output=fresh())
            mapped.add_gate("nand2", (t1, t2), output=out)
        else:  # pragma: no cover - Gate.__post_init__ rejects unknown cells
            raise SynthesisError(f"no mapping for cell {cell!r}")
    return counter


def technology_map(netlist: Netlist) -> Netlist:
    """Lower a generic netlist onto the 6-cell library."""
    if not profiling.ENABLED:
        return _technology_map(netlist)
    t0 = time.perf_counter()
    try:
        return _technology_map(netlist)
    finally:
        profiling.add("mapping", time.perf_counter() - t0)


def _technology_map(netlist: Netlist) -> Netlist:
    mapped = Netlist(f"{netlist.name}_mapped")
    for net in netlist.primary_inputs:
        mapped.add_input(net)

    # Intermediate nets introduced by decomposition get their own
    # namespace so they can never collide with the source netlist's
    # auto-generated names.
    mapped._tm_counter = _map_gates(mapped, netlist.topological_order(), 0)

    for net in netlist.primary_outputs:
        mapped.add_output(net)
    return mapped


#: Fingerprint-keyed mapping memo for :func:`map_cached`.  Entries hold
#: ``(mapped, tm_counter, n_source_gates)`` so an extension pass can
#: resume both namespaces.  Bounded LRU — sweeps revisit a handful of
#: block shapes, not an unbounded stream.
_MAP_CACHE: OrderedDict[str, tuple[Netlist, int, int]] = OrderedDict()
_MAP_CACHE_LIMIT = 32


def reset_map_cache() -> None:
    """Drop all memoised mappings (tests and cache-control hooks)."""
    _MAP_CACHE.clear()


def map_cached(netlist: Netlist) -> Netlist:
    """:func:`technology_map` with structure sharing across a sweep.

    Keyed on the source :meth:`Netlist.fingerprint`: an unchanged source
    returns the previously built mapping object outright, and a source
    produced by :meth:`Netlist.extend` from an already-mapped base is
    lowered by extending the cached base mapping over only the suffix
    gates — bit-identical to a fresh :func:`technology_map` because the
    lowering is prefix-stable and the intermediate-net / gate-name
    counters resume where the base stopped.

    Falls back to (and does not memoise) a plain mapping when
    ``REPRO_INCREMENTAL_STA`` disables shared-structure reuse.
    """
    from repro.synthesis import sta

    if not sta.incremental_enabled():
        return technology_map(netlist)
    fp = netlist.fingerprint()
    hit = _MAP_CACHE.get(fp)
    if hit is not None and hit[2] == len(netlist.gates):
        _MAP_CACHE.move_to_end(fp)
        return hit[0]

    base_fp = getattr(netlist, "_base_fingerprint", None)
    base = _MAP_CACHE.get(base_fp) if base_fp else None
    if base is not None and base[2] == netlist._base_len:
        mapped = _extend_mapping(netlist, *base)
    else:
        mapped = technology_map(netlist)
    _MAP_CACHE[fp] = (mapped, mapped._tm_counter, len(netlist.gates))
    _trim_map_cache()
    return mapped


def _trim_map_cache() -> None:
    while len(_MAP_CACHE) > _MAP_CACHE_LIMIT:
        _MAP_CACHE.popitem(last=False)


def _extend_mapping(netlist: Netlist, base_mapped: Netlist, counter: int,
                    n_base: int) -> Netlist:
    """Map only ``topo[n_base:]`` on top of the cached base mapping."""
    if not profiling.ENABLED:
        return _extend_mapping_inner(netlist, base_mapped, counter, n_base)
    t0 = time.perf_counter()
    try:
        return _extend_mapping_inner(netlist, base_mapped, counter, n_base)
    finally:
        profiling.add("mapping", time.perf_counter() - t0)


def _extend_mapping_inner(netlist: Netlist, base_mapped: Netlist,
                          counter: int, n_base: int) -> Netlist:
    mapped = base_mapped.extend(name=f"{netlist.name}_mapped")
    for net in netlist.primary_inputs:
        if net not in mapped._pi_set:
            mapped.add_input(net)
    mapped._tm_counter = _map_gates(
        mapped, netlist.topological_order()[n_base:], counter)
    mapped.set_outputs(netlist.primary_outputs)
    return mapped


def mapped_cell_counts(netlist: Netlist) -> dict[str, int]:
    """Library-cell multiset of ``technology_map(netlist)``, by counting.

    Mapping lowers each gate to a fixed pattern, so the mapped cell
    counts are an exact integer transform of the source counts
    (:data:`MAPPED_CELL_COUNTS`) — no netlist construction needed.
    Works on already-mapped netlists too (library cells map to
    themselves).
    """
    counts: dict[str, int] = {}
    for gate in netlist.gates.values():
        for cell, k in MAPPED_CELL_COUNTS[gate.cell].items():
            counts[cell] = counts.get(cell, 0) + k
    return counts
