"""Technology mapping onto the 6-cell library.

Generic gates are decomposed into {INV, NAND2, NAND3, NOR2, NOR3} with
standard minimal patterns (XOR as the 4-NAND network, MUX as 3 NAND + INV,
XNOR as the 4-NOR dual).  The mapping is purely structural; logical
equivalence is property-tested in the suite by simulating netlists before
and after mapping on random vectors.
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.synthesis.netlist import LIBRARY_CELLS, Netlist


def technology_map(netlist: Netlist) -> Netlist:
    """Lower a generic netlist onto the 6-cell library."""
    mapped = Netlist(f"{netlist.name}_mapped")
    for net in netlist.primary_inputs:
        mapped.add_input(net)

    # Intermediate nets introduced by decomposition get their own
    # namespace so they can never collide with the source netlist's
    # auto-generated names.
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"tm${counter}"

    for gate in netlist.topological_order():
        ins = gate.inputs
        out = gate.output
        cell = gate.cell
        if cell in LIBRARY_CELLS:
            mapped.add_gate(cell, ins, output=out)
        elif cell == "buf":
            mid = mapped.add_gate("inv", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "and2":
            mid = mapped.add_gate("nand2", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "and3":
            mid = mapped.add_gate("nand3", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "or2":
            mid = mapped.add_gate("nor2", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "or3":
            mid = mapped.add_gate("nor3", ins, output=fresh())
            mapped.add_gate("inv", (mid,), output=out)
        elif cell == "xor2":
            a, b = ins
            nab = mapped.add_gate("nand2", (a, b), output=fresh())
            t1 = mapped.add_gate("nand2", (a, nab), output=fresh())
            t2 = mapped.add_gate("nand2", (b, nab), output=fresh())
            mapped.add_gate("nand2", (t1, t2), output=out)
        elif cell == "xnor2":
            a, b = ins
            nab = mapped.add_gate("nor2", (a, b), output=fresh())
            t1 = mapped.add_gate("nor2", (a, nab), output=fresh())
            t2 = mapped.add_gate("nor2", (b, nab), output=fresh())
            mapped.add_gate("nor2", (t1, t2), output=out)
        elif cell == "mux2":
            s, a, b = ins
            ns = mapped.add_gate("inv", (s,), output=fresh())
            t1 = mapped.add_gate("nand2", (a, ns), output=fresh())
            t2 = mapped.add_gate("nand2", (b, s), output=fresh())
            mapped.add_gate("nand2", (t1, t2), output=out)
        else:  # pragma: no cover - Gate.__post_init__ rejects unknown cells
            raise SynthesisError(f"no mapping for cell {cell!r}")

    for net in netlist.primary_outputs:
        mapped.add_output(net)
    return mapped
