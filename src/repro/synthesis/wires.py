"""Per-process interconnect models.

The paper's headline mechanism: "The organic process has relatively fast
wires compared to the switching speed of the organic transistors" (Section
5.5).  Two effects carry that asymmetry here:

1. **Wire loading** — every net adds a fanout-dependent wire capacitance
   to the driving gate's load.  In 45 nm silicon the wire capacitance of
   even a short net rivals a gate's input capacitance; in the organic
   process the gate capacitances are picofarads (huge W*L and thick-film
   overlaps) while the metal runs on glass contribute tens of
   femtofarads, so wire load is negligible *relative to gates*.
2. **Elmore RC** — distributed wire delay ``R * (C/2 + C_sinks)``, again
   dominant for long 45 nm nets and irrelevant for the organic process at
   its millisecond gate delays.

Lengths use a fanout-based wire-load model (``length = pitch * (base +
slope * fanout)``), the same class of statistical model synthesis tools
apply pre-layout; ``pitch`` is tied to the library's inverter footprint so
the model scales with the process automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import SynthesisError


@dataclass(frozen=True)
class WireModel:
    """Fanout-based statistical wire model for one process."""

    name: str
    c_per_m: float           # wire capacitance per metre, F/m
    r_per_m: float           # wire resistance per metre, Ohm/m
    pitch: float             # average cell pitch, metres
    base_spans: float = 1.0  # net length at fanout 0, in pitches
    span_per_fanout: float = 1.0

    def __post_init__(self) -> None:
        if min(self.c_per_m, self.r_per_m, self.pitch) < 0:
            raise SynthesisError("wire parameters must be non-negative")

    # -- per-net quantities ----------------------------------------------------

    def net_length(self, fanout: int) -> float:
        """Estimated routed length of a net with the given fanout, metres."""
        return self.pitch * (self.base_spans + self.span_per_fanout * max(fanout, 1))

    def net_capacitance(self, fanout: int) -> float:
        return self.c_per_m * self.net_length(fanout)

    def net_resistance(self, fanout: int) -> float:
        return self.r_per_m * self.net_length(fanout)

    def elmore_delay(self, fanout: int, sink_capacitance: float) -> float:
        """Distributed-wire Elmore delay to the far sink."""
        length = self.net_length(fanout)
        r = self.r_per_m * length
        c = self.c_per_m * length
        return r * (0.5 * c + sink_capacitance)

    # -- long (broadcast/feedback) wires ----------------------------------------

    def span_capacitance(self, length: float) -> float:
        return self.c_per_m * length

    def span_elmore(self, length: float, sink_capacitance: float) -> float:
        r = self.r_per_m * length
        c = self.c_per_m * length
        return r * (0.5 * c + sink_capacitance)

    def scaled(self, factor: float) -> "WireModel":
        """All parasitics multiplied by *factor*; ``factor=0`` gives the
        ideal-wire ablation of Figure 15 ("w/o wire")."""
        return replace(self, c_per_m=self.c_per_m * factor,
                       r_per_m=self.r_per_m * factor,
                       name=f"{self.name}_x{factor:g}")


def block_span(total_area: float) -> float:
    """Physical side length of a placed block of the given area."""
    if total_area < 0:
        raise SynthesisError("area must be non-negative")
    return math.sqrt(total_area)


def organic_wire_model(pitch: float = 220e-6) -> WireModel:
    """Gold interconnect on glass for the pentacene process.

    50 nm evaporated Au at ~20 um width: ~0.5 Ohm/sq -> ~2.4e4 Ohm/m.
    Capacitance on a thick glass substrate without a ground plane is
    dominated by coupling to neighbours, ~30 pF/m.  Both are tiny next to
    picofarad gate capacitances and ~100 us gate delays.
    """
    return WireModel(
        name="organic_au",
        c_per_m=30e-12,
        r_per_m=2.4e4,
        pitch=pitch,
        base_spans=1.0,
        span_per_fanout=1.0,
    )


def silicon_wire_model(pitch: float = 1.4e-6) -> WireModel:
    """Intermediate-layer copper at 45 nm.

    ~0.2 fF/um and ~3 Ohm/um are standard 45 nm intermediate-metal
    numbers; at this node a 2-pitch net's capacitance already rivals a
    minimum gate's input capacitance, which is what makes silicon wires
    "slow" relative to its transistors.
    """
    return WireModel(
        name="silicon_cu_45",
        c_per_m=0.20e-9,
        r_per_m=3.0e6,
        pitch=pitch,
        base_spans=1.0,
        span_per_fanout=1.0,
    )
