"""Gate-level synthesis, timing analysis and pipelining.

This subpackage stands in for Synopsys Design Compiler + DesignWare in the
paper's flow: it builds gate-level netlists for the datapath blocks the
experiments synthesise (ALUs with pipelined multipliers/dividers, bypass
checks), maps them onto the 6-cell library, runs NLDM static timing
analysis with a per-process wire model, and cuts designs into N pipeline
stages to find the minimum clock period — the quantity Figures 11, 12 and
15 sweep.
"""

from repro.synthesis.netlist import Gate, Netlist
from repro.synthesis.generators import (
    ripple_carry_adder,
    carry_select_adder,
    array_multiplier,
    array_divider,
    simple_alu,
    bypass_check,
    execution_stage,
)
from repro.synthesis.mapping import technology_map
from repro.synthesis.wires import WireModel, organic_wire_model, silicon_wire_model
from repro.synthesis.sta import TimingReport, static_timing
from repro.synthesis.pipeline import (
    PipelineResult,
    min_period_for_stages,
    pipeline_sweep,
    stages_needed,
)

__all__ = [
    "Gate",
    "Netlist",
    "ripple_carry_adder",
    "carry_select_adder",
    "array_multiplier",
    "array_divider",
    "simple_alu",
    "bypass_check",
    "execution_stage",
    "technology_map",
    "WireModel",
    "organic_wire_model",
    "silicon_wire_model",
    "TimingReport",
    "static_timing",
    "PipelineResult",
    "min_period_for_stages",
    "pipeline_sweep",
    "stages_needed",
]
