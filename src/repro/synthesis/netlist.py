"""Gate-level netlist representation.

A :class:`Netlist` is a DAG of :class:`Gate` instances connected by named
nets.  Before technology mapping, gates may use *generic* cell names
(``and2``, ``xor2``, ``mux2``...); after :func:`repro.synthesis.mapping.
technology_map` only the six library cells remain (``inv``, ``nand2``,
``nand3``, ``nor2``, ``nor3`` — ``dff`` appears only through pipelining).

The class also provides the structural queries STA and pipelining need:
topological order, fanout maps, and logic simulation for functional
verification of the generators.

Two structural features support the incremental sweep engine
(DESIGN §7h):

- every netlist maintains a **structural fingerprint** — an incremental
  blake2b chain over (gate, primary-input) records, with the
  primary-output list folded in at query time — which keys the
  memoised-mapping and incremental-STA session caches;
- :meth:`Netlist.extend` produces a **copy-on-extend** child sharing
  the parent's gate records and hash state, so a sweep growing a block
  (a wider adder, a deeper chain) pays only for the appended cone.

When gates are only ever added after their input drivers (true for all
generators and for mapping output), insertion order *is* a topological
order and :meth:`topological_order` skips the Kahn pass entirely; the
flag also guarantees a parent's topological order stays a prefix of
every extension's, which the vector-STA structure extension relies on.
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, field

from repro.errors import SynthesisError

#: Cell names allowed after technology mapping.
LIBRARY_CELLS = frozenset({"inv", "nand2", "nand3", "nor2", "nor3"})

#: Generic cells the generators may emit (mapped later).
GENERIC_CELLS = frozenset({
    "inv", "buf", "and2", "and3", "or2", "or3", "nand2", "nand3",
    "nor2", "nor3", "xor2", "xnor2", "mux2",
})

#: Logic functions for simulation.  mux2 inputs are (sel, a, b): sel
#: selects b when true, a when false.
_FUNCTIONS = {
    "inv": lambda a: not a,
    "buf": lambda a: a,
    "and2": lambda a, b: a and b,
    "and3": lambda a, b, c: a and b and c,
    "or2": lambda a, b: a or b,
    "or3": lambda a, b, c: a or b or c,
    "nand2": lambda a, b: not (a and b),
    "nand3": lambda a, b, c: not (a and b and c),
    "nor2": lambda a, b: not (a or b),
    "nor3": lambda a, b, c: not (a or b or c),
    "xor2": lambda a, b: a != b,
    "xnor2": lambda a, b: a == b,
    "mux2": lambda s, a, b: b if s else a,
}


@dataclass(frozen=True)
class Gate:
    """One logic gate instance."""

    name: str
    cell: str
    inputs: tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if self.cell not in GENERIC_CELLS:
            raise SynthesisError(f"unknown cell type {self.cell!r}")
        expected = _input_count(self.cell)
        if len(self.inputs) != expected:
            raise SynthesisError(
                f"gate {self.name!r} ({self.cell}) needs {expected} inputs, "
                f"got {len(self.inputs)}")


def _input_count(cell: str) -> int:
    if cell in ("inv", "buf"):
        return 1
    if cell in ("mux2", "and3", "or3", "nand3", "nor3"):
        return 3
    return 2


#: Pin counts of every known cell, for the fast add_gate path (a dict
#: probe doubles as the unknown-cell check).
_INPUT_COUNTS = {cell: _input_count(cell) for cell in GENERIC_CELLS}


class Netlist:
    """A combinational gate-level netlist.

    Nets are strings; each net has at most one driver (a gate output or a
    primary input).  Sequential boundaries are not represented here —
    pipelining assigns gates to stages instead (see
    :mod:`repro.synthesis.pipeline`).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: dict[str, Gate] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._driver: dict[str, str] = {}      # net -> gate name
        self._pi_set: set[str] = set()
        self._topo_cache: list[Gate] | None = None
        # True while every gate was added after all of its input drivers,
        # making insertion order a valid topological order.
        self._insertion_topo = True
        # Structural fingerprint: an incremental blake2b chain over gate
        # and primary-input records.  Records are batched in _fp_pending
        # and folded into _fp_hash lazily, so construction stays cheap.
        self._fp_hash = hashlib.blake2b(digest_size=16)
        self._fp_pending: list[str] = []
        # Set by extend(): fingerprint and gate count of the parent this
        # netlist was copy-on-extended from (None for fresh netlists).
        self._base_fingerprint: str | None = None
        self._base_len = 0

    # -- construction ---------------------------------------------------------

    def add_input(self, net: str) -> str:
        if net in self._driver or net in self._pi_set:
            raise SynthesisError(f"net {net!r} already driven")
        self.primary_inputs.append(net)
        self._pi_set.add(net)
        self._fp_pending.append(f"i\x1f{net}")
        return net

    def add_inputs(self, prefix: str, width: int) -> list[str]:
        return [self.add_input(f"{prefix}{i}") for i in range(width)]

    def add_output(self, net: str) -> None:
        self.primary_outputs.append(net)

    def set_outputs(self, nets: list[str] | tuple[str, ...]) -> None:
        """Replace the primary-output list (used by copy-on-extend)."""
        self.primary_outputs = list(nets)

    def add_gate(self, cell: str, inputs: tuple[str, ...] | list[str],
                 output: str | None = None, name: str | None = None) -> str:
        """Add a gate; returns its output net (auto-named if omitted)."""
        if output is None:
            output = f"n{len(self.gates)}_{cell}"
        if name is None:
            name = f"g{len(self.gates)}_{cell}"
        if name in self.gates:
            raise SynthesisError(f"duplicate gate name {name!r}")
        driver = self._driver
        if output in driver or output in self._pi_set:
            raise SynthesisError(f"net {output!r} already driven")
        expected = _INPUT_COUNTS.get(cell)
        if expected is None:
            raise SynthesisError(f"unknown cell type {cell!r}")
        inputs = tuple(inputs)
        if len(inputs) != expected:
            raise SynthesisError(
                f"gate {name!r} ({cell}) needs {expected} inputs, "
                f"got {len(inputs)}")
        # Validation above covers everything Gate.__post_init__ checks,
        # so the frozen-dataclass construction overhead (~2x a plain
        # object) is bypassed on this hot path.
        gate = object.__new__(Gate)
        gate.__dict__.update(name=name, cell=cell, inputs=inputs,
                             output=output)
        if self._insertion_topo:
            pi_set = self._pi_set
            for net in inputs:
                if net not in driver and net not in pi_set:
                    self._insertion_topo = False
                    break
        self.gates[name] = gate
        driver[output] = name
        self._topo_cache = None
        self._fp_pending.append(
            f"g\x1f{name}\x1f{cell}\x1f{'|'.join(inputs)}\x1f{output}")
        return output

    # -- structural fingerprint ----------------------------------------------

    def _fold_pending(self) -> None:
        if self._fp_pending:
            self._fp_hash.update(
                "\x1e".join(self._fp_pending).encode() + b"\x1e")
            self._fp_pending.clear()

    def fingerprint(self) -> str:
        """Hex digest identifying gates, inputs and the current outputs.

        Gate/input records are chained incrementally (adding N gates
        costs O(N) regardless of netlist size); the primary-output list
        is folded into a *copy* of the chain at query time, so
        reordering or replacing outputs changes the fingerprint without
        disturbing the chain.
        """
        self._fold_pending()
        h = self._fp_hash.copy()
        h.update(("o\x1f" + "|".join(self.primary_outputs)).encode())
        return h.hexdigest()

    def extend(self, name: str | None = None) -> "Netlist":
        """Copy-on-extend: a child netlist sharing this one's structure.

        The child starts as a shallow copy (gates are immutable and
        shared; bookkeeping dicts are copied) and records this netlist's
        fingerprint and gate count, which the memoised mapping and
        incremental STA layers use to re-derive only the appended cone.
        The parent must not be mutated afterwards.
        """
        new = Netlist.__new__(Netlist)
        new.name = name if name is not None else self.name
        new.gates = dict(self.gates)
        new.primary_inputs = list(self.primary_inputs)
        new.primary_outputs = list(self.primary_outputs)
        new._driver = dict(self._driver)
        new._pi_set = set(self._pi_set)
        new._topo_cache = None
        new._insertion_topo = self._insertion_topo
        self._fold_pending()
        new._fp_hash = self._fp_hash.copy()
        new._fp_pending = []
        new._base_fingerprint = self.fingerprint()
        new._base_len = len(self.gates)
        return new

    # -- structure ------------------------------------------------------------

    def driver_of(self, net: str) -> Gate | None:
        """The gate driving *net*, or None for primary inputs."""
        name = self._driver.get(net)
        return self.gates[name] if name is not None else None

    def fanout_map(self) -> dict[str, list[tuple[Gate, int]]]:
        """net -> list of (sink gate, input pin index)."""
        fanout: dict[str, list[tuple[Gate, int]]] = {
            net: [] for net in self._driver}
        for net in self.primary_inputs:
            fanout.setdefault(net, [])
        for gate in self.gates.values():
            for k, net in enumerate(gate.inputs):
                if net not in fanout:
                    raise SynthesisError(
                        f"gate {gate.name!r} reads undriven net {net!r}")
                fanout[net].append((gate, k))
        return fanout

    def topological_order(self) -> list[Gate]:
        """Gates in dependency order; raises on combinational loops.

        When every gate was added after its input drivers (the common
        case — all generators and the mapper construct bottom-up),
        insertion order is already topological and is returned directly;
        otherwise a Kahn pass sorts (and validates) the graph.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        if self._insertion_topo:
            order = list(self.gates.values())
            self._topo_cache = order
            return order

        available = set(self.primary_inputs)
        fanout = self.fanout_map()
        # remaining[g] = number of input nets not yet available.
        remaining: dict[str, int] = {}
        ready: list[Gate] = []
        for gate in self.gates.values():
            deps = sum(1 for net in gate.inputs if net not in available)
            remaining[gate.name] = deps
            if deps == 0:
                ready.append(gate)

        order: list[Gate] = []
        while ready:
            gate = ready.pop()
            order.append(gate)
            for sink, pin in fanout.get(gate.output, ()):
                # A sink may read this net on several pins; decrement once
                # per connected pin.
                del pin
                remaining[sink.name] -= 1
                if remaining[sink.name] == 0:
                    ready.append(sink)

        if len(order) != len(self.gates):
            stuck = [n for n, d in remaining.items() if d > 0][:5]
            raise SynthesisError(
                f"netlist {self.name!r} has a combinational loop or "
                f"undriven nets (stuck gates: {stuck})")
        self._topo_cache = order
        return order

    def logic_depth(self) -> int:
        """Maximum number of gates on any input-to-output path."""
        depth: dict[str, int] = {net: 0 for net in self.primary_inputs}
        for gate in self.topological_order():
            depth[gate.output] = 1 + max(depth[n] for n in gate.inputs)
        return max((depth.get(n, 0) for n in self.primary_outputs), default=0)

    def simulate(self, values: dict[str, bool]) -> dict[str, bool]:
        """Evaluate the netlist for given primary-input values."""
        missing = set(self.primary_inputs) - set(values)
        if missing:
            raise SynthesisError(f"missing input values: {sorted(missing)[:5]}")
        nets: dict[str, bool] = {n: bool(values[n]) for n in self.primary_inputs}
        for gate in self.topological_order():
            fn = _FUNCTIONS[gate.cell]
            nets[gate.output] = bool(fn(*(nets[n] for n in gate.inputs)))
        return {n: nets[n] for n in self.primary_outputs}

    # -- stats ----------------------------------------------------------------

    def cell_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates.values():
            counts[gate.cell] = counts.get(gate.cell, 0) + 1
        return counts

    @property
    def is_mapped(self) -> bool:
        return all(g.cell in LIBRARY_CELLS for g in self.gates.values())

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, gates={len(self.gates)}, "
                f"pi={len(self.primary_inputs)}, po={len(self.primary_outputs)})")
