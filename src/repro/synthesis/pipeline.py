"""Pipeline cutting / retiming: minimum clock period for N stages.

The repro equivalent of the paper's methodology: "we synthesize the
baseline design and cut the stage which is on the critical path manually to
ensure an improved clock rate" plus DesignWare's "parameterized number of
pipeline stages and automatic pipeline retiming" (Section 5.1).

Given a mapped netlist and per-gate delays (NLDM + wire, from STA), a
greedy ASAP leveling assigns each gate to the earliest stage whose
remaining logic budget fits it.  Binary search over the budget finds the
minimum clock period achievable with N stages:

    period(N) = logic_budget(N) + clk->q + setup + skew + feedback-wire

The last term is the per-cycle cost of the cross-pipeline feedback signals
(bypasses, stalls, branch resolution) travelling the block's physical span
— the wire cost that, per the paper, silicon pays in gate-delay terms and
the organic process does not.  Gate granularity emerges naturally: no
budget can go below the largest single gate delay, which is what tops out
the organic curves around 22 stages in Figure 12.

Registers inserted at stage boundaries are counted per crossed boundary
(a value consumed k stages after production needs k flops), which drives
the area growth with depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.characterization.library import Library
from repro.errors import PipelineError
from repro.synthesis.netlist import Netlist
from repro.synthesis.sta import static_timing
from repro.synthesis.wires import WireModel, block_span


@dataclass(frozen=True)
class PipelineResult:
    """Minimum-period pipelining of one netlist into ``n_stages``."""

    netlist_name: str
    n_stages: int
    period: float
    frequency: float
    logic_budget: float
    overhead: float
    n_registers: int
    gate_area: float
    register_area: float
    stage_of_gate: dict[str, int] = field(repr=False, default_factory=dict)

    @property
    def area(self) -> float:
        return self.gate_area + self.register_area


def per_gate_delays(netlist: Netlist, library: Library, wire: WireModel,
                    input_slew: float | None = None,
                    output_load: float | None = None) -> dict[str, float]:
    """Per-gate delay (NLDM + output wire RC) from one STA pass."""
    report = static_timing(netlist, library, wire, input_slew=input_slew,
                           output_load=output_load)
    return report.gate_delay


def stages_needed(netlist: Netlist, delays: dict[str, float],
                  budget: float) -> tuple[int, dict[str, int]] | None:
    """Greedy ASAP leveling: stages required for a per-stage logic budget.

    Returns ``(n_stages, stage_of_gate)``; ``None`` if some single gate
    exceeds the budget (gate granularity bound).
    """
    net_state: dict[str, tuple[int, float]] = {
        net: (0, 0.0) for net in netlist.primary_inputs}
    stage_of: dict[str, int] = {}
    max_stage = 0
    for gate in netlist.topological_order():
        d = delays[gate.name]
        if d > budget:
            return None
        s = 0
        t_in = 0.0
        for net in gate.inputs:
            ns, nt = net_state[net]
            if ns > s:
                s, t_in = ns, nt
            elif ns == s:
                t_in = max(t_in, nt)
        t_out = t_in + d
        if t_out > budget:
            s += 1
            t_out = d
        stage_of[gate.name] = s
        net_state[gate.output] = (s, t_out)
        if s > max_stage:
            max_stage = s
    return max_stage + 1, stage_of


def count_registers(netlist: Netlist, stage_of: dict[str, int],
                    n_stages: int) -> int:
    """Pipeline flops: one per net per crossed stage boundary.

    Primary inputs are produced at stage 0's boundary; primary outputs are
    registered at the final boundary.
    """
    fanout = netlist.fanout_map()
    po_set = set(netlist.primary_outputs)
    total = 0
    for net, sinks in fanout.items():
        driver = netlist.driver_of(net)
        s_driver = stage_of[driver.name] if driver is not None else 0
        s_last = s_driver
        for sink, _pin in sinks:
            s_last = max(s_last, stage_of[sink.name])
        if net in po_set:
            s_last = max(s_last, n_stages - 1)
            total += 1                     # final output register
        total += s_last - s_driver
    return total


def broadcast_penalty(library: Library, wire: WireModel,
                      span_length: float) -> float:
    """Per-cycle cost of a feedback signal crossing the block's span.

    Modelled as the extra delay of an inverter driving the span wire's
    capacitance (NLDM lookup, so it is priced in *this process's* gate
    currents) plus the wire's own Elmore delay.
    """
    inv = library.cell("inv")
    cin = inv.input_caps["a"]
    slew = library.typical_slew()
    c_span = wire.span_capacitance(span_length)
    loaded = inv.delay("a", slew, 4.0 * cin + c_span)
    unloaded = inv.delay("a", slew, 4.0 * cin)
    return (loaded - unloaded) + wire.span_elmore(span_length, cin)


#: Feedback-wire length model: stall/bypass/branch-resolution signals must
#: cross the block each cycle; their routed length grows with pipeline
#: depth (they span more stage boundaries — the Pentium-4 "wire stages"
#: effect the paper cites in Section 5.5).
FEEDBACK_BASE_SPANS = 0.5
FEEDBACK_SPANS_PER_STAGE = 0.15


def sequencing_overhead(netlist: Netlist, library: Library, wire: WireModel,
                        n_stages: int = 1, skew_fo4: float = 0.5) -> float:
    """Per-stage overhead: clk->q + setup + skew + feedback wire.

    The feedback term is where the processes diverge: it is priced by
    NLDM tables and the per-process wire model, so the same physical
    length costs silicon several FO4 and the organic process almost
    nothing (Section 5.5's "relatively fast wires").
    """
    fo4 = library.inverter_fo4_delay()
    gate_area = sum(library.cell(g.cell).area
                    for g in netlist.gates.values())
    span = block_span(gate_area)
    feedback_length = span * (FEEDBACK_BASE_SPANS
                              + FEEDBACK_SPANS_PER_STAGE * n_stages)
    return (library.register_overhead()
            + skew_fo4 * fo4
            + broadcast_penalty(library, wire, feedback_length))


def min_period_for_stages(netlist: Netlist, library: Library,
                          wire: WireModel, n_stages: int,
                          delays: dict[str, float] | None = None,
                          skew_fo4: float = 0.5,
                          tolerance: float = 1e-3) -> PipelineResult:
    """Minimum clock period cutting *netlist* into *n_stages* stages."""
    if n_stages < 1:
        raise PipelineError(f"n_stages must be >= 1, got {n_stages}")
    if delays is None:
        delays = per_gate_delays(netlist, library, wire)

    overhead = sequencing_overhead(netlist, library, wire, n_stages,
                                   skew_fo4)

    # Budget bounds: one gate .. whole critical path.
    lo = max(delays.values())
    order = netlist.topological_order()
    arrival: dict[str, float] = {n: 0.0 for n in netlist.primary_inputs}
    for gate in order:
        arrival[gate.output] = delays[gate.name] + max(
            arrival[n] for n in gate.inputs)
    # Upper bound over ALL nets: the leveler assigns every gate, including
    # any not on an input-to-output path.  Tiny slack because summation
    # order differs between this bound and the greedy leveling.
    hi = max(arrival.values(), default=0.0)
    hi = max(hi, lo) * (1.0 + 1e-9)

    feasible_hi = stages_needed(netlist, delays, hi)
    if feasible_hi is None:
        raise PipelineError("critical-path budget infeasible (bug)")

    # If even the single-gate bound needs more stages than allowed, the
    # request is infeasible only when n_stages < stages at budget hi.
    if feasible_hi[0] > n_stages:
        raise PipelineError(
            f"netlist {netlist.name!r} cannot fit in {n_stages} stage(s)")

    best_budget = hi
    best_assignment = feasible_hi[1]
    best_stages = feasible_hi[0]
    lo_b, hi_b = lo, hi
    for _ in range(60):
        if hi_b - lo_b <= tolerance * hi_b:
            break
        mid = 0.5 * (lo_b + hi_b)
        res = stages_needed(netlist, delays, mid)
        if res is not None and res[0] <= n_stages:
            best_budget, best_stages, best_assignment = mid, res[0], res[1]
            hi_b = mid
        else:
            lo_b = mid

    n_regs = count_registers(netlist, best_assignment, best_stages)
    gate_area = sum(library.cell(g.cell).area
                    for g in netlist.gates.values())
    reg_area = n_regs * library.dff.area
    # Overhead is priced at the stage count actually achieved: asking for
    # more stages than the gate granularity permits does not add feedback
    # wire that was never built.
    if best_stages < n_stages:
        overhead = sequencing_overhead(netlist, library, wire, best_stages,
                                       skew_fo4)
    period = best_budget + overhead
    return PipelineResult(
        netlist_name=netlist.name,
        n_stages=best_stages,
        period=period,
        frequency=1.0 / period,
        logic_budget=best_budget,
        overhead=overhead,
        n_registers=n_regs,
        gate_area=gate_area,
        register_area=reg_area,
        stage_of_gate=best_assignment,
    )


def pipeline_sweep(netlist: Netlist, library: Library, wire: WireModel,
                   stage_counts: list[int] | range,
                   skew_fo4: float = 0.5) -> list[PipelineResult]:
    """Minimum period across a range of stage counts (Figure 12 driver).

    Per-gate delays are computed once and shared; stage counts beyond the
    gate-granularity bound return the deepest feasible pipelining (the
    flat tail of the organic curve in Figure 12b).
    """
    delays = per_gate_delays(netlist, library, wire)
    results = []
    for n in stage_counts:
        results.append(min_period_for_stages(
            netlist, library, wire, n, delays=delays, skew_fo4=skew_fo4))
    return results
