"""Gate-level generators for the paper's datapath blocks.

The pipeline-depth experiments synthesise AnyCore's execution stage: "a
forward bypass check and two arithmetic logic units (ALUs), one for simple
ALU operations and one for complex multiplication and division.  The
complex ALU consists of two [...] stallable, pipelined multipliers and
dividers" (Section 5.1).  These functions build those blocks as generic
gate netlists, functionally verified by simulation against integer
arithmetic in the test suite; :func:`repro.synthesis.mapping.technology_map`
lowers them onto the 6-cell library.

All arithmetic is unsigned with little-endian bit order (index 0 = LSB).
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.synthesis.netlist import Netlist

Bits = list[str]


# ---------------------------------------------------------------------------
# Bit-level helpers
# ---------------------------------------------------------------------------

def full_adder(nl: Netlist, a: str, b: str, cin: str) -> tuple[str, str]:
    """(sum, carry-out) of a + b + cin."""
    axb = nl.add_gate("xor2", (a, b))
    s = nl.add_gate("xor2", (axb, cin))
    t1 = nl.add_gate("and2", (a, b))
    t2 = nl.add_gate("and2", (axb, cin))
    cout = nl.add_gate("or2", (t1, t2))
    return s, cout


def half_adder(nl: Netlist, a: str, b: str) -> tuple[str, str]:
    """(sum, carry-out) of a + b."""
    s = nl.add_gate("xor2", (a, b))
    c = nl.add_gate("and2", (a, b))
    return s, c


def full_adder_cin1(nl: Netlist, a: str, b: str) -> tuple[str, str]:
    """(sum, carry-out) of a + b + 1, constant-folded."""
    s = nl.add_gate("xnor2", (a, b))
    c = nl.add_gate("or2", (a, b))
    return s, c


def _require_same_width(*vectors: Bits) -> int:
    widths = {len(v) for v in vectors}
    if len(widths) != 1:
        raise SynthesisError(f"width mismatch: {sorted(widths)}")
    width = widths.pop()
    if width < 1:
        raise SynthesisError("vectors must have at least one bit")
    return width


def add_vectors(nl: Netlist, a: Bits, b: Bits, cin: str | None = None
                ) -> tuple[Bits, str]:
    """Ripple-carry sum of two equal-width vectors; returns (sum, cout)."""
    width = _require_same_width(a, b)
    out: Bits = []
    if cin is None:
        s, carry = half_adder(nl, a[0], b[0])
    else:
        s, carry = full_adder(nl, a[0], b[0], cin)
    out.append(s)
    for i in range(1, width):
        s, carry = full_adder(nl, a[i], b[i], carry)
        out.append(s)
    return out, carry


def subtract_vectors(nl: Netlist, a: Bits, b: Bits) -> tuple[Bits, str]:
    """a - b via a + ~b + 1; returns (difference, not-borrow).

    The carry-out is 1 when a >= b (no borrow).
    """
    width = _require_same_width(a, b)
    nb = [nl.add_gate("inv", (bit,)) for bit in b]
    s, carry = full_adder_cin1(nl, a[0], nb[0])
    out = [s]
    for i in range(1, width):
        s, carry = full_adder(nl, a[i], nb[i], carry)
        out.append(s)
    return out, carry


def mux_vectors(nl: Netlist, sel: str, a: Bits, b: Bits) -> Bits:
    """Bitwise mux: *b* when sel else *a*."""
    _require_same_width(a, b)
    return [nl.add_gate("mux2", (sel, x, y)) for x, y in zip(a, b)]


def reduce_and(nl: Netlist, bits: Bits) -> str:
    """AND-reduce with a balanced tree of and3/and2 gates."""
    if not bits:
        raise SynthesisError("cannot reduce an empty vector")
    level = list(bits)
    while len(level) > 1:
        nxt: Bits = []
        i = 0
        while i < len(level):
            chunk = level[i:i + 3]
            if len(chunk) == 3:
                nxt.append(nl.add_gate("and3", tuple(chunk)))
            elif len(chunk) == 2:
                nxt.append(nl.add_gate("and2", tuple(chunk)))
            else:
                nxt.append(chunk[0])
            i += 3
        level = nxt
    return level[0]


def reduce_or(nl: Netlist, bits: Bits) -> str:
    """OR-reduce with a balanced tree of or3/or2 gates."""
    if not bits:
        raise SynthesisError("cannot reduce an empty vector")
    level = list(bits)
    while len(level) > 1:
        nxt: Bits = []
        i = 0
        while i < len(level):
            chunk = level[i:i + 3]
            if len(chunk) == 3:
                nxt.append(nl.add_gate("or3", tuple(chunk)))
            elif len(chunk) == 2:
                nxt.append(nl.add_gate("or2", tuple(chunk)))
            else:
                nxt.append(chunk[0])
            i += 3
        level = nxt
    return level[0]


# ---------------------------------------------------------------------------
# Adders
# ---------------------------------------------------------------------------

def ripple_carry_adder(width: int = 16, name: str = "rca") -> Netlist:
    """Plain ripple-carry adder: a + b + cin -> sum, cout."""
    nl = Netlist(f"{name}{width}")
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)
    cin = nl.add_input("cin")
    s, cout = add_vectors(nl, a, b, cin)
    for i, net in enumerate(s):
        nl.add_output(net)
    nl.add_output(cout)
    nl.sum_nets = s          # convenience attributes for composition
    nl.cout_net = cout
    return nl


def carry_select_adder(width: int = 16, block: int = 4,
                       name: str = "csa") -> Netlist:
    """Carry-select adder: ripple blocks computed for both carries, muxed.

    Shorter critical path than ripple at ~2x the area — gives the
    technology mapper and pipeliner a second adder architecture to choose
    from, like DesignWare would.
    """
    if block < 2:
        raise SynthesisError("carry-select block must be >= 2 bits")
    nl = Netlist(f"{name}{width}")
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)
    cin = nl.add_input("cin")

    out: Bits = []
    carry = cin
    lo = 0
    first = True
    while lo < width:
        hi = min(lo + block, width)
        a_blk, b_blk = a[lo:hi], b[lo:hi]
        if first:
            s, carry = add_vectors(nl, a_blk, b_blk, carry)
            out.extend(s)
            first = False
        else:
            # Compute both possibilities, select with the incoming carry.
            s0, c0 = add_vectors(nl, a_blk, b_blk, cin=None)
            s1, c1 = _add_vectors_cin1(nl, a_blk, b_blk)
            out.extend(mux_vectors(nl, carry, s0, s1))
            carry = nl.add_gate("mux2", (carry, c0, c1))
        lo = hi
    for net in out:
        nl.add_output(net)
    nl.add_output(carry)
    # Construction state for extend_carry_select_adder: widening a CSA
    # only appends select blocks, so the builder records where it
    # stopped.
    nl._csa_state = {"width": width, "block": block, "prefix": name,
                     "a": a, "b": b, "out": out, "carry": carry}
    return nl


def extend_carry_select_adder(base: Netlist, width: int,
                              name: str | None = None) -> Netlist:
    """Widen a :func:`carry_select_adder` by copy-on-extend.

    Returns a new netlist sharing the base's gates (via
    :meth:`Netlist.extend`) with additional carry-select blocks covering
    bits ``[base_width, width)``.  Gate-for-gate identical to a fresh
    ``carry_select_adder(width, block)`` — auto-generated net and gate
    names depend only on gate count, which the extension continues —
    so downstream mapping and STA reuse the shared prefix.  Only the
    primary-input *insertion order* differs (new ``a``/``b`` bits are
    appended after the base's inputs), which no analysis depends on.

    The base width must be a multiple of its block size (otherwise the
    final partial block of the base would need rebuilding, breaking
    prefix sharing) and ``width`` must strictly exceed it.
    """
    state = getattr(base, "_csa_state", None)
    if state is None:
        raise SynthesisError(
            f"netlist {base.name!r} was not built by carry_select_adder")
    w0 = state["width"]
    block = state["block"]
    if width <= w0:
        raise SynthesisError(
            f"extension width {width} must exceed base width {w0}")
    if w0 % block:
        raise SynthesisError(
            f"base width {w0} is not a multiple of block {block}; "
            f"its last block would need rebuilding")

    nl = base.extend(name=f"{name or state['prefix']}{width}")
    a = list(state["a"]) + [nl.add_input(f"a{i}") for i in range(w0, width)]
    b = list(state["b"]) + [nl.add_input(f"b{i}") for i in range(w0, width)]

    out: Bits = list(state["out"])
    carry = state["carry"]
    lo = w0
    while lo < width:
        hi = min(lo + block, width)
        a_blk, b_blk = a[lo:hi], b[lo:hi]
        s0, c0 = add_vectors(nl, a_blk, b_blk, cin=None)
        s1, c1 = _add_vectors_cin1(nl, a_blk, b_blk)
        out.extend(mux_vectors(nl, carry, s0, s1))
        carry = nl.add_gate("mux2", (carry, c0, c1))
        lo = hi
    nl.set_outputs([*out, carry])
    nl._csa_state = {"width": width, "block": block,
                     "prefix": state["prefix"], "a": a, "b": b,
                     "out": out, "carry": carry}
    return nl


def _add_vectors_cin1(nl: Netlist, a: Bits, b: Bits) -> tuple[Bits, str]:
    s, carry = full_adder_cin1(nl, a[0], b[0])
    out = [s]
    for i in range(1, len(a)):
        s, carry = full_adder(nl, a[i], b[i], carry)
        out.append(s)
    return out, carry


def _carry_select_add(nl: Netlist, a: Bits, b: Bits, cin: str,
                      block: int = 4) -> tuple[Bits, str]:
    """Carry-select addition of two vectors with a carry-in net."""
    width = _require_same_width(a, b)
    out: Bits = []
    carry = cin
    lo = 0
    first = True
    while lo < width:
        hi = min(lo + block, width)
        a_blk, b_blk = a[lo:hi], b[lo:hi]
        if first:
            s, carry = add_vectors(nl, a_blk, b_blk, carry)
            out.extend(s)
            first = False
        else:
            s0, c0 = add_vectors(nl, a_blk, b_blk, cin=None)
            s1, c1 = _add_vectors_cin1(nl, a_blk, b_blk)
            out.extend(mux_vectors(nl, carry, s0, s1))
            carry = nl.add_gate("mux2", (carry, c0, c1))
        lo = hi
    return out, carry


# ---------------------------------------------------------------------------
# Multiplier and divider (the "complex ALU" ingredients)
# ---------------------------------------------------------------------------

def array_multiplier(width: int = 16, name: str = "mul") -> Netlist:
    """Unsigned array multiplier: a * b -> 2*width product bits.

    Classic carry-save array: AND-gate partial products, one ripple row
    per multiplier bit.  Deeply and regularly pipelinable, which is
    exactly why the paper uses pipelined DesignWare multipliers for the
    ALU-depth experiment.
    """
    nl = Netlist(f"{name}{width}")
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)

    # Row 0: partial product of b0.
    acc: Bits = [nl.add_gate("and2", (a[i], b[0])) for i in range(width)]
    product: Bits = [acc[0]]
    acc = acc[1:]

    for j in range(1, width):
        pp = [nl.add_gate("and2", (a[i], b[j])) for i in range(width)]
        row: Bits = []
        carry: str | None = None
        for i in range(width):
            addend = acc[i] if i < len(acc) else None
            if addend is None and carry is None:
                row.append(pp[i])
            elif addend is None:
                s, carry = half_adder(nl, pp[i], carry)
                row.append(s)
            elif carry is None:
                s, carry = half_adder(nl, pp[i], addend)
                row.append(s)
            else:
                s, carry = full_adder(nl, pp[i], addend, carry)
                row.append(s)
        if carry is not None:
            row.append(carry)
        product.append(row[0])
        acc = row[1:]

    product.extend(acc)
    if len(product) != 2 * width:
        raise SynthesisError(
            f"multiplier produced {len(product)} bits, expected {2 * width}")
    for net in product:
        nl.add_output(net)
    return nl


def array_divider(width: int = 16, name: str = "div") -> Netlist:
    """Unsigned restoring array divider: a / b -> quotient, remainder.

    One subtract-and-restore row per quotient bit (MSB first); each row is
    a ripple subtractor plus a restore mux, the standard combinational
    divider array.  The quotient for b == 0 is all-ones (as real dividers
    produce); callers guard div-by-zero architecturally.
    """
    nl = Netlist(f"{name}{width}")
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)

    remainder: Bits = []      # grows as dividend bits shift in, LSB first
    quotient: Bits = [""] * width
    for step in range(width):
        bit_index = width - 1 - step
        remainder = [a[bit_index]] + remainder
        r_width = len(remainder)
        # Compare/subtract against the low r_width bits of b, but only a
        # full-width subtract is correct once r_width == width; for short
        # remainders, also require b's high bits to be zero.
        if r_width < width:
            diff, no_borrow = subtract_vectors(nl, remainder, b[:r_width])
            high_zero = reduce_or(nl, b[r_width:])
            high_zero = nl.add_gate("inv", (high_zero,))
            q = nl.add_gate("and2", (no_borrow, high_zero))
        else:
            diff, q = subtract_vectors(nl, remainder, b)
        quotient[bit_index] = q
        remainder = mux_vectors(nl, q, remainder, diff)

    for net in quotient:
        nl.add_output(net)
    for net in remainder:
        nl.add_output(net)
    nl.quotient_nets = quotient
    nl.remainder_nets = remainder
    return nl


# ---------------------------------------------------------------------------
# ALUs and the execution stage
# ---------------------------------------------------------------------------

#: Simple-ALU operation select encoding (2 bits: op1 op0).
ALU_OPS = {"add": 0, "sub": 1, "and": 2, "xor": 3}


def simple_alu(width: int = 16, name: str = "alu",
               select_block: int = 4) -> Netlist:
    """Add/sub/and/xor ALU with a 2-bit op select.

    op = 00 add, 01 sub, 10 and, 11 xor.  Outputs: width result bits plus
    a carry/borrow flag.  The adder is carry-select (real execution pipes
    use fast adders; a ripple ALU would skew the pipeline-region balance).
    """
    nl = Netlist(f"{name}{width}")
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)
    op0 = nl.add_input("op0")
    op1 = nl.add_input("op1")

    # Shared adder: b conditionally inverted by op0 (sub), cin = op0.
    bx = [nl.add_gate("xor2", (bit, op0)) for bit in b]
    s, carry = _carry_select_add(nl, a, bx, cin=op0, block=select_block)

    and_bits = [nl.add_gate("and2", (a[i], b[i])) for i in range(width)]
    xor_bits = [nl.add_gate("xor2", (a[i], b[i])) for i in range(width)]

    logic_bits = mux_vectors(nl, op0, and_bits, xor_bits)
    result = mux_vectors(nl, op1, s, logic_bits)

    for net in result:
        nl.add_output(net)
    nl.add_output(carry)
    return nl


def bypass_check(tag_width: int = 6, n_sources: int = 2,
                 n_producers: int = 3, name: str = "bypass") -> Netlist:
    """Forward-bypass check: compare source tags against producer tags.

    For each of ``n_sources`` operand tags and ``n_producers`` in-flight
    result tags, produce a match line (XNOR-reduce) plus a per-source
    "any hit" line — the select logic in front of the operand muxes in
    AnyCore's execution stage.
    """
    nl = Netlist(name)
    sources = [nl.add_inputs(f"src{s}_", tag_width) for s in range(n_sources)]
    producers = [nl.add_inputs(f"prod{p}_", tag_width)
                 for p in range(n_producers)]
    valid = [nl.add_input(f"valid{p}") for p in range(n_producers)]

    for s, src in enumerate(sources):
        hits = []
        for p, prod in enumerate(producers):
            eq_bits = [nl.add_gate("xnor2", (src[i], prod[i]))
                       for i in range(tag_width)]
            eq = reduce_and(nl, eq_bits)
            hit = nl.add_gate("and2", (eq, valid[p]))
            nl.add_output(hit)
            hits.append(hit)
        nl.add_output(reduce_or(nl, hits))
    return nl


def complex_alu(width: int = 16, name: str = "complex_alu") -> Netlist:
    """The complex ALU: two multipliers and two dividers, output-muxed.

    Mirrors the paper's execution-pipe composition ("two [...] stallable,
    pipelined multipliers and dividers"); pipelining is applied afterwards
    by :mod:`repro.synthesis.pipeline`, which is the repro equivalent of
    DesignWare's automatic retiming.
    """
    nl = Netlist(name)
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)
    c = nl.add_inputs("c", width)
    d = nl.add_inputs("d", width)
    sel_div = nl.add_input("sel_div")
    sel_unit = nl.add_input("sel_unit")

    mul0 = _inline(nl, array_multiplier(width), {"a": a, "b": b}, "mul0")
    mul1 = _inline(nl, array_multiplier(width), {"a": c, "b": d}, "mul1")
    div0 = _inline(nl, array_divider(width), {"a": a, "b": b}, "div0")
    div1 = _inline(nl, array_divider(width), {"a": c, "b": d}, "div1")

    mul_out = mux_vectors(nl, sel_unit, mul0[:2 * width], mul1[:2 * width])
    div_cat0 = div0[:2 * width]
    div_cat1 = div1[:2 * width]
    div_out = mux_vectors(nl, sel_unit, div_cat0, div_cat1)
    result = mux_vectors(nl, sel_div, mul_out, div_out)
    for net in result:
        nl.add_output(net)
    return nl


def execution_stage(width: int = 16, tag_width: int = 6,
                    name: str = "exec_stage") -> Netlist:
    """AnyCore's execution stage: bypass check + simple ALU + complex ALU.

    This is the block the Section 5.2 ALU-depth experiment pipelines.
    """
    nl = Netlist(name)
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)
    op0 = nl.add_input("op0")
    op1 = nl.add_input("op1")
    sel_complex = nl.add_input("sel_complex")
    sel_div = nl.add_input("sel_div")

    bp_out = _inline(
        nl, bypass_check(tag_width=tag_width, n_sources=2, n_producers=3),
        {}, "bp", auto_inputs=True)
    for net in bp_out:
        nl.add_output(net)

    alu_out = _inline(nl, simple_alu(width),
                      {"a": a, "b": b, "op0": [op0], "op1": [op1]}, "salu")
    cx_out = _inline(nl, complex_alu(width),
                     {"a": a, "b": b, "c": a, "d": b,
                      "sel_div": [sel_div], "sel_unit": [op0]}, "calu")

    result = mux_vectors(nl, sel_complex, alu_out[:width], cx_out[:width])
    for net in result:
        nl.add_output(net)
    return nl


def _inline(nl: Netlist, sub: Netlist, bindings: dict[str, list[str]],
            prefix: str, auto_inputs: bool = False) -> list[str]:
    """Copy *sub* into *nl*, binding its input vectors; returns its outputs.

    ``bindings`` maps input prefixes (or exact scalar names) to net lists
    in the parent.  With ``auto_inputs``, unbound sub-inputs become fresh
    primary inputs of the parent.
    """
    net_map: dict[str, str] = {}

    # Build an expansion of bindings: exact input-net name -> parent net.
    bound: dict[str, str] = {}
    for key, nets in bindings.items():
        if len(nets) == 1 and key in sub.primary_inputs:
            bound[key] = nets[0]
            continue
        for i, parent_net in enumerate(nets):
            bound[f"{key}{i}"] = parent_net

    for net in sub.primary_inputs:
        if net in bound:
            net_map[net] = bound[net]
        elif auto_inputs:
            net_map[net] = nl.add_input(f"{prefix}_{net}")
        else:
            raise SynthesisError(
                f"unbound input {net!r} when inlining {sub.name!r}")

    for gate in sub.topological_order():
        new_inputs = tuple(net_map[n] for n in gate.inputs)
        out = nl.add_gate(gate.cell, new_inputs,
                          output=f"{prefix}.{gate.output}",
                          name=f"{prefix}.{gate.name}")
        net_map[gate.output] = out
    return [net_map[n] for n in sub.primary_outputs]


# ---------------------------------------------------------------------------
# Wallace-tree multiplier (the DesignWare-class, retiming-friendly one)
# ---------------------------------------------------------------------------

MaybeNet = str | bool
MaybeCarry = str | bool


def _add_bit(nl: Netlist, x: str, y: str | None, cin: MaybeCarry
             ) -> tuple[str, MaybeCarry]:
    """One adder bit with constant folding on the carry / missing addend."""
    if y is None:
        if cin is False:
            return x, False
        if cin is True:
            s = nl.add_gate("inv", (x,))
            return s, x
        return half_adder(nl, x, cin)
    if cin is False:
        return half_adder(nl, x, y)
    if cin is True:
        return full_adder_cin1(nl, x, y)
    return full_adder(nl, x, y, cin)


def _mux_carry(nl: Netlist, sel: str, c0: MaybeCarry, c1: MaybeCarry
               ) -> MaybeCarry:
    if c0 == c1:
        return c0
    if c0 is False and c1 is True:
        return sel
    if c0 is True and c1 is False:
        return nl.add_gate("inv", (sel,))
    if isinstance(c0, bool):
        # c0 constant, c1 a net.
        if c0 is False:
            return nl.add_gate("and2", (sel, c1))
        return nl.add_gate("or2", (nl.add_gate("inv", (sel,)), c1))
    if isinstance(c1, bool):
        if c1 is False:
            return nl.add_gate("and2", (nl.add_gate("inv", (sel,)), c0))
        return nl.add_gate("or2", (sel, c0))
    return nl.add_gate("mux2", (sel, c0, c1))


def wallace_multiplier(width: int = 16, block: int = 4,
                       name: str = "wmul") -> Netlist:
    """Carry-save-tree multiplier with a carry-select final adder.

    Logarithmic reduction depth (~log1.5 of the operand width) plus a
    sqrt-ish final adder gives a ~25-35 FO4 critical path at 16 bits —
    the DesignWare-class multiplier the paper's "pipelined multipliers"
    retime.  Used by the ALU-depth experiments; the plain
    :func:`array_multiplier` remains available as the area-lean variant.
    """
    nl = Netlist(f"{name}{width}")
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)

    columns: list[list[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(nl.add_gate("and2", (a[i], b[j])))

    # Carry-save reduction to height <= 2.  A carry out of the MSB column
    # is structurally generated but can never assert for an unsigned WxW
    # product (it would exceed 2^(2W)); it is dropped.
    while any(len(col) > 2 for col in columns):
        nxt: list[list[str]] = [[] for _ in range(2 * width + 1)]
        for c, col in enumerate(columns):
            i = 0
            while len(col) - i >= 3:
                s, carry = full_adder(nl, col[i], col[i + 1], col[i + 2])
                nxt[c].append(s)
                nxt[c + 1].append(carry)
                i += 3
            if len(col) - i == 2:
                s, carry = half_adder(nl, col[i], col[i + 1])
                nxt[c].append(s)
                nxt[c + 1].append(carry)
                i += 2
            nxt[c].extend(col[i:])
        columns = nxt[:2 * width]

    # Pad any empty top column with a constant-0 net so every final-adder
    # bit has a first operand.
    const0: str | None = None
    for col in columns:
        if not col:
            if const0 is None:
                na = nl.add_gate("inv", (a[0],))
                const0 = nl.add_gate("and2", (a[0], na))
            col.append(const0)

    # Final two-row addition with carry-select blocks.
    product: list[str] = []
    carry: MaybeCarry = False
    lo = 0
    while lo < 2 * width:
        hi = min(lo + block, 2 * width)
        xs = [columns[k][0] for k in range(lo, hi)]
        ys = [columns[k][1] if len(columns[k]) >= 2 else None
              for k in range(lo, hi)]
        if isinstance(carry, bool) and lo == 0:
            # First block: ripple directly with the constant carry.
            c: MaybeCarry = carry
            for x, y in zip(xs, ys):
                s, c = _add_bit(nl, x, y, c)
                product.append(s)
            carry = c
        else:
            # Speculative block for carry-in 0 and 1, then select.
            s0: list[str] = []
            s1: list[str] = []
            c0: MaybeCarry = False
            c1: MaybeCarry = True
            for x, y in zip(xs, ys):
                b0, c0 = _add_bit(nl, x, y, c0)
                b1, c1 = _add_bit(nl, x, y, c1)
                s0.append(b0)
                s1.append(b1)
            if isinstance(carry, bool):
                chosen = s1 if carry else s0
                product.extend(chosen)
                carry = c1 if carry else c0
            else:
                for b0, b1 in zip(s0, s1):
                    if b0 == b1:
                        product.append(b0)
                    else:
                        product.append(nl.add_gate("mux2", (carry, b0, b1)))
                carry = _mux_carry(nl, carry, c0, c1)
        lo = hi

    if len(product) != 2 * width:
        raise SynthesisError(
            f"wallace multiplier produced {len(product)} bits")
    for net in product:
        nl.add_output(net)
    return nl


def divider_iteration(width: int = 16, name: str = "div_step") -> Netlist:
    """One iteration of a stallable restoring divider.

    The paper's complex ALU uses DesignWare *stallable* dividers, which
    iterate one subtract-and-restore step per cycle rather than unrolling
    the whole array; this netlist is that per-cycle slice (shift-in,
    ripple subtract, quotient bit, restore mux).
    """
    nl = Netlist(f"{name}{width}")
    rem = nl.add_inputs("r", width)       # current partial remainder
    b = nl.add_inputs("b", width)         # divisor
    diff, no_borrow = subtract_vectors(nl, rem, b)
    restored = mux_vectors(nl, no_borrow, rem, diff)
    nl.add_output(no_borrow)              # quotient bit
    for net in restored:
        nl.add_output(net)
    return nl


def complex_alu_slice(width: int = 16, name: str = "complex_slice"
                      ) -> Netlist:
    """Per-cycle combinational logic of the complex ALU (Figure 12 block).

    Two Wallace multipliers and the iteration slices of two stallable
    dividers, output-muxed — the single-cycle critical path the ALU-depth
    experiment repeatedly cuts.  (The full combinational divider array is
    available as :func:`array_divider` / :func:`complex_alu` for the
    area-oriented studies.)
    """
    nl = Netlist(name)
    a = nl.add_inputs("a", width)
    b = nl.add_inputs("b", width)
    c = nl.add_inputs("c", width)
    d = nl.add_inputs("d", width)
    sel_div = nl.add_input("sel_div")
    sel_unit = nl.add_input("sel_unit")

    mul0 = _inline(nl, wallace_multiplier(width), {"a": a, "b": b}, "mul0")
    mul1 = _inline(nl, wallace_multiplier(width), {"a": c, "b": d}, "mul1")
    div0 = _inline(nl, divider_iteration(width), {"r": a, "b": b}, "div0")
    div1 = _inline(nl, divider_iteration(width), {"r": c, "b": d}, "div1")

    mul_out = mux_vectors(nl, sel_unit, mul0[:width], mul1[:width])
    div_out = mux_vectors(nl, sel_unit, div0[1:width + 1], div1[1:width + 1])
    result = mux_vectors(nl, sel_div, mul_out, div_out)
    for net in result:
        nl.add_output(net)
    # High product half (multiplies only) — keeps the upper Wallace tree
    # live, as a real design's full-width result port would.
    for net in mux_vectors(nl, sel_unit, mul0[width:], mul1[width:]):
        nl.add_output(net)
    return nl
