"""NLDM static timing analysis with wire parasitics.

A single topological pass computes, per net: arrival time, transition
(slew) and capacitive load.  Gate delays and output slews come from the
characterised library's NLDM tables (bilinear lookup on the propagated
input slew and the computed output load); wire delay adds the Elmore term
of the fanout-based wire model.

This is the repro equivalent of Design Compiler's timing engine for the
minimum-clock-period measurements in Figures 11, 12 and 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.characterization.library import Library
from repro.errors import SynthesisError
from repro.synthesis.netlist import Gate, Netlist
from repro.synthesis.wires import WireModel


@dataclass(frozen=True)
class TimingReport:
    """Result of a static timing pass."""

    netlist_name: str
    max_delay: float
    critical_path: tuple[str, ...]          # gate names, input to output
    arrival: dict[str, float] = field(repr=False, default_factory=dict)
    slew: dict[str, float] = field(repr=False, default_factory=dict)
    load: dict[str, float] = field(repr=False, default_factory=dict)
    gate_delay: dict[str, float] = field(repr=False, default_factory=dict)

    @property
    def critical_length(self) -> int:
        return len(self.critical_path)


def _net_loading(netlist: Netlist, library: Library, wire: WireModel,
                 output_load: float | None
                 ) -> tuple[dict[str, float], dict[str, float], dict[str, int]]:
    """Per-net (total load, pin-only load, sink count).

    Total load = sink pin caps + wire cap; primary outputs additionally
    drive *output_load* (default: one inverter input of the next block).
    """
    inv_cin = library.cell("inv").input_caps["a"]
    if output_load is None:
        output_load = inv_cin
    fanout = netlist.fanout_map()
    po_set = set(netlist.primary_outputs)
    loads: dict[str, float] = {}
    pin_loads: dict[str, float] = {}
    sink_counts: dict[str, int] = {}
    for net, sinks in fanout.items():
        pin_cap = 0.0
        for gate, pin_index in sinks:
            cell = library.cell(gate.cell)
            pin_name = cell.inputs[pin_index]
            pin_cap += cell.input_caps[pin_name]
        n_sinks = len(sinks) + (1 if net in po_set else 0)
        if net in po_set:
            pin_cap += output_load
        loads[net] = pin_cap + wire.net_capacitance(max(n_sinks, 1))
        pin_loads[net] = pin_cap
        sink_counts[net] = max(n_sinks, 1)
    return loads, pin_loads, sink_counts


def net_loads(netlist: Netlist, library: Library, wire: WireModel,
              output_load: float | None = None) -> dict[str, float]:
    """Capacitive load of every net (pins + wire + primary-output load)."""
    loads, _, _ = _net_loading(netlist, library, wire, output_load)
    return loads


def static_timing(netlist: Netlist, library: Library, wire: WireModel,
                  input_slew: float | None = None,
                  output_load: float | None = None) -> TimingReport:
    """Arrival-time propagation over the mapped netlist."""
    if not netlist.is_mapped:
        raise SynthesisError(
            f"netlist {netlist.name!r} must be technology-mapped before STA")
    if input_slew is None:
        input_slew = library.typical_slew()

    loads, pin_loads, sink_counts = _net_loading(netlist, library, wire,
                                                 output_load)

    arrival: dict[str, float] = {}
    slew: dict[str, float] = {}
    worst_input: dict[str, str | None] = {}   # gate -> critical fanin net
    gate_delay: dict[str, float] = {}

    for net in netlist.primary_inputs:
        arrival[net] = 0.0
        slew[net] = input_slew

    for gate in netlist.topological_order():
        cell = library.cell(gate.cell)
        load = loads[gate.output]
        # Wire RC from this gate's output to its sinks (Elmore, shared).
        t_wire = wire.elmore_delay(sink_counts[gate.output],
                                   pin_loads[gate.output])

        best_t = -1.0
        best_net: str | None = None
        best_slew = input_slew
        for pin_index, net in enumerate(gate.inputs):
            pin_name = cell.inputs[pin_index]
            d = cell.delay(pin_name, slew[net], load)
            t = arrival[net] + d + t_wire
            if t > best_t:
                best_t = t
                best_net = net
                best_slew = cell.output_slew(pin_name, slew[net], load)
        arrival[gate.output] = best_t
        slew[gate.output] = best_slew
        worst_input[gate.name] = best_net
        gate_delay[gate.name] = best_t - arrival[best_net]

    max_delay = 0.0
    end_net: str | None = None
    for net in netlist.primary_outputs:
        t = arrival.get(net, 0.0)
        if t > max_delay:
            max_delay = t
            end_net = net

    # Backtrace the critical path.
    path: list[str] = []
    net = end_net
    while net is not None:
        driver = netlist.driver_of(net)
        if driver is None:
            break
        path.append(driver.name)
        net = worst_input[driver.name]
    path.reverse()

    return TimingReport(
        netlist_name=netlist.name,
        max_delay=max_delay,
        critical_path=tuple(path),
        arrival=arrival,
        slew=slew,
        load=loads,
        gate_delay=gate_delay,
    )
