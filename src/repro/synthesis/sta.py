"""NLDM static timing analysis with wire parasitics.

A single topological pass computes, per net: arrival time, transition
(slew) and capacitive load.  Gate delays and output slews come from the
characterised library's NLDM tables (bilinear lookup on the propagated
input slew and the computed output load); wire delay adds the Elmore term
of the fanout-based wire model.

This is the repro equivalent of Design Compiler's timing engine for the
minimum-clock-period measurements in Figures 11, 12 and 15.

Two engines compute the same pass:

- a **scalar** gate-at-a-time loop (the reference, used for small
  netlists and whenever the library's tables cannot be batched);
- a **levelised array** engine for large netlists (the multi-thousand
  gate datapath blocks): gates are grouped by logic level and each
  level's delays/slews come from vectorised bilinear interpolation over
  the library's stacked NLDM grids.  Same recurrence, same tie-breaking,
  same interpolation formula — ``tests/synthesis`` asserts the engines
  agree on every generator block.

On top of both engines sits **incremental delta-retiming**
(DESIGN §7h, gated by ``REPRO_INCREMENTAL_STA=auto|0|1``): each full
pass records a *session* — per-net arrival/slew/load state keyed by the
netlist's structural fingerprint, library, wire model and boundary
conditions — and a later pass over an extension of that structure
(:meth:`Netlist.extend`, or the same object after in-place additions)
re-propagates only the **dirty cone**: gates that are new, whose output
loading changed, or whose input arrival/slew changed bitwise.  Clean
gates keep their recorded values, which equal what a full re-time would
compute because every per-gate step is a pure function of its inputs —
so incremental results are *bit-identical* to the full path (enforced
by ``tests/synthesis/test_sta_incremental.py`` and the
``sta-incremental-agreement`` validation check).
"""

from __future__ import annotations

import os
import time

from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import count as _counter

import numpy as np

from repro.characterization.library import Library
from repro.errors import SynthesisError
from repro.runtime import profiling, telemetry
from repro.synthesis.netlist import Gate, Netlist
from repro.synthesis.wires import WireModel

#: Below this gate count the scalar engine wins (array setup dominates).
VECTOR_MIN_GATES = 2000

#: Environment knob for incremental delta-retiming: ``auto``/``1`` (on,
#: the default) or ``0`` (always full re-time — the oracle path).
INCREMENTAL_ENV = "REPRO_INCREMENTAL_STA"


def incremental_enabled() -> bool:
    """True unless ``REPRO_INCREMENTAL_STA`` is 0/false/off."""
    return os.environ.get(INCREMENTAL_ENV, "auto").lower() not in (
        "0", "false", "off")


#: Timing sessions for delta-retiming, keyed by (netlist fingerprint,
#: library token, wire state, input slew, output load).  Bounded LRU:
#: a sweep chains through a handful of live sessions; evicting an old
#: one only costs a full re-time.
_SESSION_LIMIT = 64
_SESSIONS: OrderedDict[tuple, dict] = OrderedDict()

_LIB_TOKENS = _counter()


def reset_incremental() -> None:
    """Drop all recorded timing sessions (tests/validation isolation)."""
    _SESSIONS.clear()


def _library_token(library: Library) -> int:
    """A process-unique id per library object (cheap session-key part)."""
    tok = getattr(library, "_sta_token", None)
    if tok is None:
        tok = next(_LIB_TOKENS)
        object.__setattr__(library, "_sta_token", tok)
    return tok


def _wire_state_key(wire: WireModel) -> tuple:
    return (wire.name, wire.c_per_m, wire.r_per_m, wire.pitch,
            wire.base_spans, wire.span_per_fanout)


def _session_key(netlist_fp: str, library: Library, wire: WireModel,
                 input_slew: float, output_load: float | None) -> tuple:
    return (netlist_fp, _library_token(library), _wire_state_key(wire),
            input_slew, output_load)


def _record_session(key: tuple, session: dict) -> None:
    _SESSIONS[key] = session
    _SESSIONS.move_to_end(key)
    while len(_SESSIONS) > _SESSION_LIMIT:
        _SESSIONS.popitem(last=False)


@dataclass(frozen=True)
class TimingReport:
    """Result of a static timing pass."""

    netlist_name: str
    max_delay: float
    critical_path: tuple[str, ...]          # gate names, input to output
    arrival: dict[str, float] = field(repr=False, default_factory=dict)
    slew: dict[str, float] = field(repr=False, default_factory=dict)
    load: dict[str, float] = field(repr=False, default_factory=dict)
    gate_delay: dict[str, float] = field(repr=False, default_factory=dict)

    @property
    def critical_length(self) -> int:
        return len(self.critical_path)


def _net_loading(netlist: Netlist, library: Library, wire: WireModel,
                 output_load: float | None
                 ) -> tuple[dict[str, float], dict[str, float], dict[str, int]]:
    """Per-net (total load, pin-only load, sink count).

    Total load = sink pin caps + wire cap; primary outputs additionally
    drive *output_load* (default: one inverter input of the next block).
    """
    inv_cin = library.cell("inv").input_caps["a"]
    if output_load is None:
        output_load = inv_cin
    fanout = netlist.fanout_map()
    po_set = set(netlist.primary_outputs)
    loads: dict[str, float] = {}
    pin_loads: dict[str, float] = {}
    sink_counts: dict[str, int] = {}
    for net, sinks in fanout.items():
        pin_cap = 0.0
        for gate, pin_index in sinks:
            cell = library.cell(gate.cell)
            pin_name = cell.inputs[pin_index]
            pin_cap += cell.input_caps[pin_name]
        n_sinks = len(sinks) + (1 if net in po_set else 0)
        if net in po_set:
            pin_cap += output_load
        loads[net] = pin_cap + wire.net_capacitance(max(n_sinks, 1))
        pin_loads[net] = pin_cap
        sink_counts[net] = max(n_sinks, 1)
    return loads, pin_loads, sink_counts


def net_loads(netlist: Netlist, library: Library, wire: WireModel,
              output_load: float | None = None) -> dict[str, float]:
    """Capacitive load of every net (pins + wire + primary-output load)."""
    loads, _, _ = _net_loading(netlist, library, wire, output_load)
    return loads


def static_timing(netlist: Netlist, library: Library, wire: WireModel,
                  input_slew: float | None = None,
                  output_load: float | None = None) -> TimingReport:
    """Arrival-time propagation over the mapped netlist."""
    if not profiling.ENABLED:
        return _static_timing(netlist, library, wire, input_slew,
                              output_load)
    t0 = time.perf_counter()
    try:
        return _static_timing(netlist, library, wire, input_slew,
                              output_load)
    finally:
        profiling.add("sta", time.perf_counter() - t0)


def _static_timing(netlist: Netlist, library: Library, wire: WireModel,
                   input_slew: float | None,
                   output_load: float | None) -> TimingReport:
    if not netlist.is_mapped:
        raise SynthesisError(
            f"netlist {netlist.name!r} must be technology-mapped before STA")
    if input_slew is None:
        input_slew = library.typical_slew()

    if incremental_enabled():
        report = _try_incremental(netlist, library, wire, input_slew,
                                  output_load)
        if report is not None:
            return report

    if len(netlist.gates) >= VECTOR_MIN_GATES:
        report = _vector_static_timing(netlist, library, wire,
                                       input_slew, output_load)
        if report is not None:
            return report

    loads, pin_loads, sink_counts = _net_loading(netlist, library, wire,
                                                 output_load)

    arrival: dict[str, float] = {}
    slew: dict[str, float] = {}
    worst_input: dict[str, str | None] = {}   # gate -> critical fanin net
    gate_delay: dict[str, float] = {}

    for net in netlist.primary_inputs:
        arrival[net] = 0.0
        slew[net] = input_slew

    # The gate loop below is the hot path of every synthesis experiment
    # (tens of thousands of gates for the wide datapath blocks), so cell
    # objects are cached per cell name, dict lookups are hoisted into
    # locals, and the output slew is computed once per gate, for the
    # critical pin only, rather than on every new running maximum.
    cells: dict[str, object] = {}
    elmore = wire.elmore_delay
    for gate in netlist.topological_order():
        cell = cells.get(gate.cell)
        if cell is None:
            cell = cells[gate.cell] = library.cell(gate.cell)
        output = gate.output
        load = loads[output]
        # Wire RC from this gate's output to its sinks (Elmore, shared).
        t_wire = elmore(sink_counts[output], pin_loads[output])

        cell_inputs = cell.inputs
        cell_delay = cell.delay
        best_t = -1.0
        best_net: str | None = None
        best_pin: str | None = None
        for pin_index, net in enumerate(gate.inputs):
            pin_name = cell_inputs[pin_index]
            t = arrival[net] + cell_delay(pin_name, slew[net], load) + t_wire
            if t > best_t:
                best_t = t
                best_net = net
                best_pin = pin_name
        arrival[output] = best_t
        slew[output] = cell.output_slew(best_pin, slew[best_net], load)
        worst_input[gate.name] = best_net
        gate_delay[gate.name] = best_t - arrival[best_net]

    if telemetry.ENABLED:
        topo = netlist.topological_order()
        telemetry.count("sta.runs")
        telemetry.count("sta.scalar_runs")
        telemetry.count("sta.gates", len(topo))
        # One delay lookup per gate input pin plus one output-slew lookup
        # per gate — derived after the fact, so the hot loop stays clean.
        telemetry.count("sta.nldm_lookups",
                        sum(len(g.inputs) for g in topo) + len(topo))

    report = _scalar_report(netlist, arrival, slew, loads, worst_input,
                            gate_delay)
    if incremental_enabled():
        fp = netlist.fingerprint()
        _record_session(
            _session_key(fp, library, wire, input_slew, output_load),
            {"engine": "scalar", "n_gates": len(netlist.gates),
             "loads": loads, "pin_loads": pin_loads,
             "sink_counts": sink_counts, "arrival": arrival, "slew": slew,
             "worst_input": worst_input, "gate_delay": gate_delay,
             "report": report})
        netlist._sta_prev_fp = fp
    return report


def _scalar_report(netlist: Netlist, arrival: dict, slew: dict, loads: dict,
                   worst_input: dict, gate_delay: dict) -> TimingReport:
    """Report assembly shared by the full and incremental scalar engines."""
    max_delay = 0.0
    end_net: str | None = None
    for net in netlist.primary_outputs:
        t = arrival.get(net, 0.0)
        if t > max_delay:
            max_delay = t
            end_net = net

    # Backtrace the critical path.
    path: list[str] = []
    net = end_net
    while net is not None:
        driver = netlist.driver_of(net)
        if driver is None:
            break
        path.append(driver.name)
        net = worst_input[driver.name]
    path.reverse()

    return TimingReport(
        netlist_name=netlist.name,
        max_delay=max_delay,
        critical_path=tuple(path),
        arrival=arrival,
        slew=slew,
        load=loads,
        gate_delay=gate_delay,
    )


# ---------------------------------------------------------------------------
# Incremental delta-retiming
# ---------------------------------------------------------------------------

def _try_incremental(netlist: Netlist, library: Library, wire: WireModel,
                     input_slew: float,
                     output_load: float | None) -> TimingReport | None:
    """Serve this pass from a recorded session, if one chains to it.

    Three outcomes: an *exact hit* (identical structure and boundary
    conditions already timed — the recorded report is returned as-is), a
    *delta re-time* from the parent session (only the dirty cone is
    recomputed), or ``None`` (no usable session; the caller runs a full
    pass, which then records a fresh session).
    """
    base_fps = (getattr(netlist, "_base_fingerprint", None),
                getattr(netlist, "_sta_prev_fp", None))
    if not any(base_fps):
        return None
    fp = netlist.fingerprint()
    n = len(netlist.gates)
    want_vector = (n >= VECTOR_MIN_GATES
                   and _library_grids(library) is not None)
    engine = "vector" if want_vector else "scalar"

    key = _session_key(fp, library, wire, input_slew, output_load)
    sess = _SESSIONS.get(key)
    if sess is not None:
        _SESSIONS.move_to_end(key)
        if sess["engine"] == engine and sess["n_gates"] == n:
            if telemetry.ENABLED:
                telemetry.count("sta.runs")
                telemetry.count("sta.incremental_hits")
            return sess["report"]

    for base_fp in base_fps:
        if not base_fp or base_fp == fp:
            continue
        base = _SESSIONS.get(
            _session_key(base_fp, library, wire, input_slew, output_load))
        if (base is None or base["engine"] != engine
                or base["n_gates"] > n):
            continue
        if engine == "vector":
            report = _vector_incremental(netlist, library, wire, input_slew,
                                         output_load, base, key, fp)
        else:
            report = _scalar_incremental(netlist, library, wire, input_slew,
                                         output_load, base, key, fp)
        if report is not None:
            return report
    return None


def _scalar_incremental(netlist: Netlist, library: Library, wire: WireModel,
                        input_slew: float, output_load: float | None,
                        base: dict, key: tuple, fp: str) -> TimingReport:
    """Scalar delta-retiming from a recorded session.

    Net loading is recomputed in full (one cheap dict pass); the NLDM
    propagation — the expensive part — touches only the dirty cone: new
    gates, gates whose output loading changed, and gates downstream of a
    bitwise arrival/slew change.  Because the per-gate computation is a
    pure function of (input arrival/slew, output load), untouched values
    are exactly what a full pass would recompute.
    """
    loads, pin_loads, sink_counts = _net_loading(netlist, library, wire,
                                                 output_load)
    b_loads = base["loads"]
    b_pins = base["pin_loads"]
    b_sinks = base["sink_counts"]
    dirty_load = {
        net for net, load in loads.items()
        if (b_loads.get(net) != load or b_pins.get(net) != pin_loads[net]
            or b_sinks.get(net) != sink_counts[net])}

    arrival = dict(base["arrival"])
    slew = dict(base["slew"])
    worst_input = dict(base["worst_input"])
    gate_delay = dict(base["gate_delay"])
    for net in netlist.primary_inputs:
        if net not in arrival:
            arrival[net] = 0.0
            slew[net] = input_slew

    changed: set[str] = set()
    cells: dict[str, object] = {}
    elmore = wire.elmore_delay
    retimed = 0
    for gate in netlist.topological_order():
        output = gate.output
        if gate.name in worst_input and output not in dirty_load:
            for net in gate.inputs:
                if net in changed:
                    break
            else:
                continue
        retimed += 1
        cell = cells.get(gate.cell)
        if cell is None:
            cell = cells[gate.cell] = library.cell(gate.cell)
        load = loads[output]
        t_wire = elmore(sink_counts[output], pin_loads[output])
        cell_inputs = cell.inputs
        cell_delay = cell.delay
        best_t = -1.0
        best_net: str | None = None
        best_pin: str | None = None
        for pin_index, net in enumerate(gate.inputs):
            pin_name = cell_inputs[pin_index]
            t = arrival[net] + cell_delay(pin_name, slew[net], load) + t_wire
            if t > best_t:
                best_t = t
                best_net = net
                best_pin = pin_name
        new_slew = cell.output_slew(best_pin, slew[best_net], load)
        if arrival.get(output) != best_t or slew.get(output) != new_slew:
            changed.add(output)
        arrival[output] = best_t
        slew[output] = new_slew
        worst_input[gate.name] = best_net
        gate_delay[gate.name] = best_t - arrival[best_net]

    if telemetry.ENABLED:
        telemetry.count("sta.runs")
        telemetry.count("sta.incremental_runs")
        telemetry.count("sta.gates", len(netlist.gates))
        telemetry.count("sta.retimed_gates", retimed)

    report = _scalar_report(netlist, arrival, slew, loads, worst_input,
                            gate_delay)
    _record_session(key, {
        "engine": "scalar", "n_gates": len(netlist.gates),
        "loads": loads, "pin_loads": pin_loads, "sink_counts": sink_counts,
        "arrival": arrival, "slew": slew, "worst_input": worst_input,
        "gate_delay": gate_delay, "report": report})
    netlist._sta_prev_fp = fp
    return report


# ---------------------------------------------------------------------------
# Levelised array engine
# ---------------------------------------------------------------------------

def _library_grids(library: Library) -> dict | None:
    """Stacked NLDM grids of every cell, or None if they cannot be batched.

    Batching requires every arc table of every cell to share the same
    (slew, load) axes — true for any library characterised on one grid —
    and at most two arcs (rise/fall) per input pin.  The result is cached
    on the library object; ``None`` (unsupported) is cached too, sending
    every later call down the scalar engine.
    """
    cached = getattr(library, "_vector_grids", "unset")
    if cached != "unset":
        return cached

    ref_slews = ref_loads = None
    delay_grids: list = []
    trans_grids: list = []
    cells: dict[str, dict] = {}
    supported = True
    for name, cell in library.cells.items():
        info = {"npins": len(cell.inputs), "caps": [], "delay_arcs": [],
                "trans_arcs": []}
        for pin in cell.inputs:
            try:
                arcs = cell.arcs_from(pin)
            except Exception:
                supported = False
                break
            if not 1 <= len(arcs) <= 2:
                supported = False
                break
            for arc in arcs:
                for table in (arc.delay, arc.transition):
                    if ref_slews is None:
                        ref_slews, ref_loads = table.slews, table.loads
                    elif not (np.array_equal(table.slews, ref_slews)
                              and np.array_equal(table.loads, ref_loads)):
                        supported = False
                        break
                if not supported:
                    break
            if not supported:
                break
            da = len(delay_grids)
            delay_grids.append(arcs[0].delay.values)
            ta = len(trans_grids)
            trans_grids.append(arcs[0].transition.values)
            if len(arcs) == 2:
                delay_grids.append(arcs[1].delay.values)
                trans_grids.append(arcs[1].transition.values)
                db, tb = da + 1, ta + 1
            else:
                db, tb = da, ta
            info["caps"].append(cell.input_caps[pin])
            info["delay_arcs"].append((da, db))
            info["trans_arcs"].append((ta, tb))
        if not supported:
            break
        cells[name] = info

    if not supported or ref_slews is None:
        grids = None
    else:
        grids = {
            "slews": np.asarray(ref_slews, dtype=float),
            "loads": np.asarray(ref_loads, dtype=float),
            "delay": np.stack(delay_grids),
            "trans": np.stack(trans_grids),
            "cells": cells,
        }
    object.__setattr__(library, "_vector_grids", grids)
    return grids


def _vector_structure(netlist: Netlist) -> dict:
    """Integer-encoded, level-sorted view of the netlist (cached).

    One Python pass assigns net ids and logic levels; everything else is
    arrays.  The cache is tied to the identity of the topological-order
    list, which :meth:`Netlist.add_gate` invalidates.
    """
    topo = netlist.topological_order()
    cached = getattr(netlist, "_vector_struct", None)
    if cached is not None and cached["topo"] is topo:
        return cached

    net_id: dict[str, int] = {}
    names: list[str] = []
    for net in netlist.primary_inputs:
        net_id[net] = len(names)
        names.append(net)
    n_pi = len(names)

    n = len(topo)
    levels = [0] * n_pi + [0] * n          # per net id
    cell_code: dict[str, int] = {}
    cell_names: list[str] = []
    g_code = np.empty(n, dtype=np.int32)
    g_out = np.empty(n, dtype=np.int32)
    g_in = np.full((n, 3), -1, dtype=np.int32)
    g_level = np.empty(n, dtype=np.int32)
    gate_names: list[str] = []

    for k, gate in enumerate(topo):
        lv = 0
        for p, net in enumerate(gate.inputs):
            i = net_id[net]
            g_in[k, p] = i
            li = levels[i]
            if li > lv:
                lv = li
        code = cell_code.get(gate.cell)
        if code is None:
            code = cell_code[gate.cell] = len(cell_names)
            cell_names.append(gate.cell)
        out = gate.output
        oid = len(names)
        net_id[out] = oid
        names.append(out)
        levels[oid] = lv + 1
        g_code[k] = code
        g_out[k] = oid
        g_level[k] = lv + 1
        gate_names.append(gate.name)

    return _finish_vector_structure(
        netlist, topo, names, n_pi, net_id, levels, cell_names,
        g_code, g_out, g_in, g_level, gate_names)


def _finish_vector_structure(netlist: Netlist, topo, names, n_pi, net_id,
                             levels, cell_names, g_code_u, g_out_u, g_in_u,
                             g_level_u, gate_names_u) -> dict:
    """Level-sort the (unsorted, topo-order) encoding and cache it.

    The unsorted arrays and the id maps are kept in the struct so
    :func:`_extend_vector_structure` can append an extension's gates and
    re-sort without re-encoding the shared prefix.
    """
    n = len(g_code_u)
    order = np.argsort(g_level_u, kind="stable")
    g_code = g_code_u[order]
    g_out = g_out_u[order]
    g_in = g_in_u[order]
    g_level = g_level_u[order]
    gate_names = [gate_names_u[i] for i in order]

    max_level = int(g_level[-1]) if n else 0
    # bounds[k] = index one past the last gate of level k+1.
    bounds = np.searchsorted(g_level, np.arange(1, max_level + 1),
                             side="right")

    driver = np.full(len(names), -1, dtype=np.int32)
    driver[g_out] = np.arange(n, dtype=np.int32)

    po_ids = []
    seen = set()
    for net in netlist.primary_outputs:
        i = net_id.get(net)
        if i is not None and i not in seen:
            seen.add(i)
            po_ids.append(i)

    struct = {
        "topo": topo,
        "names": names,
        "n_pi": n_pi,
        "net_id": net_id,
        "levels": levels,
        "cell_names": cell_names,
        "g_code": g_code,
        "g_out": g_out,
        "g_in": g_in,
        "bounds": bounds,
        "max_level": max_level,
        "gate_names": gate_names,
        "driver": driver,
        "po_ids": np.asarray(po_ids, dtype=np.int32),
        "order": order,
        "g_code_u": g_code_u,
        "g_out_u": g_out_u,
        "g_in_u": g_in_u,
        "g_level_u": g_level_u,
        "gate_names_u": gate_names_u,
    }
    netlist._vector_struct = struct
    return struct


def _extend_vector_structure(netlist: Netlist, base: dict) -> dict | None:
    """Encode *netlist* by appending to a parent's structure, or None.

    Valid only when the parent's topological order is a prefix of this
    netlist's — guaranteed for insertion-ordered netlists grown by
    :meth:`Netlist.extend` or in-place additions.  Net ids extend the
    parent's numbering (new primary inputs and gate outputs append after
    the parent's nets); the level sort is recomputed over the combined
    arrays.  Because the per-net and per-gate encodings are identical to
    a fresh pass — only the id *labels* differ, which no per-gate
    computation depends on — the resulting timing is bitwise equal.
    """
    if not getattr(netlist, "_insertion_topo", False):
        return None
    topo = netlist.topological_order()
    n_base = len(base["topo"])
    if n_base > len(topo) or (
            n_base and topo[n_base - 1] is not base["topo"][n_base - 1]):
        return None
    cached = getattr(netlist, "_vector_struct", None)
    if cached is not None and cached["topo"] is topo:
        return cached

    net_id = dict(base["net_id"])
    names = list(base["names"])
    levels = list(base["levels"])
    for net in netlist.primary_inputs:
        if net not in net_id:
            net_id[net] = len(names)
            names.append(net)
            levels.append(0)

    cell_names = list(base["cell_names"])
    cell_code = {name: i for i, name in enumerate(cell_names)}
    n_new = len(topo) - n_base
    new_code = np.empty(n_new, dtype=np.int32)
    new_out = np.empty(n_new, dtype=np.int32)
    new_in = np.full((n_new, 3), -1, dtype=np.int32)
    new_level = np.empty(n_new, dtype=np.int32)
    new_names: list[str] = []
    for k in range(n_new):
        gate = topo[n_base + k]
        lv = 0
        for p, net in enumerate(gate.inputs):
            i = net_id[net]
            new_in[k, p] = i
            li = levels[i]
            if li > lv:
                lv = li
        code = cell_code.get(gate.cell)
        if code is None:
            code = cell_code[gate.cell] = len(cell_names)
            cell_names.append(gate.cell)
        oid = len(names)
        net_id[gate.output] = oid
        names.append(gate.output)
        levels.append(lv + 1)
        new_code[k] = code
        new_out[k] = oid
        new_level[k] = lv + 1
        new_names.append(gate.name)

    return _finish_vector_structure(
        netlist, topo, names, base["n_pi"], net_id, levels, cell_names,
        np.concatenate([base["g_code_u"], new_code]),
        np.concatenate([base["g_out_u"], new_out]),
        np.concatenate([base["g_in_u"], new_in]),
        np.concatenate([base["g_level_u"], new_level]),
        base["gate_names_u"] + new_names)


def _cell_tables(grids: dict, cell_names: list[str]) -> tuple | None:
    """Per-cell-code lookup tables for the array engine, or None."""
    cells = grids["cells"]
    try:
        infos = [cells[name] for name in cell_names]
    except KeyError:
        return None                      # scalar path raises LibraryError

    ncells = len(infos)
    npins = np.array([info["npins"] for info in infos], dtype=np.int32)
    caps_tab = np.zeros((ncells, 3))
    d_a = np.zeros((ncells, 3), dtype=np.int32)
    d_b = np.zeros((ncells, 3), dtype=np.int32)
    t_a = np.zeros((ncells, 3), dtype=np.int32)
    t_b = np.zeros((ncells, 3), dtype=np.int32)
    for c, info in enumerate(infos):
        for p in range(info["npins"]):
            caps_tab[c, p] = info["caps"][p]
            d_a[c, p], d_b[c, p] = info["delay_arcs"][p]
            t_a[c, p], t_b[c, p] = info["trans_arcs"][p]
    return npins, caps_tab, d_a, d_b, t_a, t_b


def _vector_loads(struct: dict, caps_tab, g_code, library: Library,
                  wire: WireModel, output_load: float | None) -> tuple:
    """(loads, pin_cap, sink_cnt, t_wire) arrays — vector _net_loading."""
    g_in = struct["g_in"]
    n_nets = len(struct["names"])
    if output_load is None:
        output_load = library.cell("inv").input_caps["a"]
    pin_cap = np.zeros(n_nets)
    sink_cnt = np.zeros(n_nets, dtype=np.int64)
    for p in range(3):
        col = g_in[:, p]
        valid = col >= 0
        if not valid.any():
            continue
        ids = col[valid]
        pin_cap += np.bincount(ids, weights=caps_tab[g_code[valid], p],
                               minlength=n_nets)
        sink_cnt += np.bincount(ids, minlength=n_nets)
    po_ids = struct["po_ids"]
    pin_cap[po_ids] += output_load
    sink_cnt[po_ids] += 1

    fo = np.maximum(sink_cnt, 1)
    length = wire.pitch * (wire.base_spans + wire.span_per_fanout * fo)
    loads = pin_cap + wire.c_per_m * length
    wire_r = wire.r_per_m * length
    wire_c = wire.c_per_m * length
    t_wire = wire_r * (0.5 * wire_c + pin_cap)
    return loads, pin_cap, sink_cnt, t_wire


def _bilinear(G, rows, i, j, ts, tl):
    v00 = G[rows, i, j]
    v01 = G[rows, i, j + 1]
    v10 = G[rows, i + 1, j]
    v11 = G[rows, i + 1, j + 1]
    return ((1 - ts) * (v00 + tl * (v01 - v00))
            + ts * (v10 + tl * (v11 - v10)))


def _vector_report(netlist: Netlist, struct: dict, arrival, slew, loads,
                   gate_best_in_u, gate_delay_u) -> TimingReport:
    """Report assembly shared by the full and incremental array engines.

    Per-gate arrays are indexed in *unsorted* (topological/insertion)
    order, which stays stable across structure extensions.
    """
    names = struct["names"]
    max_delay = 0.0
    end_id = -1
    for i in struct["po_ids"]:
        t = float(arrival[i])
        if t > max_delay:
            max_delay = t
            end_id = int(i)

    gate_names_u = struct["gate_names_u"]
    driver_u = np.full(len(names), -1, dtype=np.int64)
    driver_u[struct["g_out_u"]] = np.arange(len(gate_names_u))
    path: list[str] = []
    net = end_id
    while net >= 0:
        g = int(driver_u[net])
        if g < 0:
            break
        path.append(gate_names_u[g])
        net = int(gate_best_in_u[g])
    path.reverse()

    # The scalar engine only records arrival/slew for primary inputs and
    # gate outputs it visited; the arrays cover exactly the same nets.
    return TimingReport(
        netlist_name=netlist.name,
        max_delay=max_delay,
        critical_path=tuple(path),
        arrival=dict(zip(names, arrival.tolist())),
        slew=dict(zip(names, slew.tolist())),
        load=dict(zip(names, loads.tolist())),
        gate_delay=dict(zip(gate_names_u, gate_delay_u.tolist())),
    )


def _record_vector_session(netlist: Netlist, struct: dict, key: tuple,
                           fp: str, loads, pin_cap, sink_cnt, t_wire,
                           arrival, slew, gate_t_u, gate_best_in_u,
                           gate_delay_u, report: TimingReport) -> None:
    _record_session(key, {
        "engine": "vector", "n_gates": len(struct["g_code_u"]),
        "struct": struct, "loads": loads, "pin_cap": pin_cap,
        "sink_cnt": sink_cnt, "t_wire": t_wire, "arrival": arrival,
        "slew": slew, "gate_t_u": gate_t_u,
        "gate_best_in_u": gate_best_in_u, "gate_delay_u": gate_delay_u,
        "report": report})
    netlist._sta_prev_fp = fp


def _vector_static_timing(netlist: Netlist, library: Library,
                          wire: WireModel, input_slew: float,
                          output_load: float | None) -> TimingReport | None:
    """The levelised array engine; None if this library can't be batched.

    Arithmetic mirrors the scalar engine expression for expression
    (same bilinear form, same strictly-greater pin tie-breaking via
    first-maximum argmax), so the engines agree to float rounding.
    """
    grids = _library_grids(library)
    if grids is None:
        return None
    struct = _vector_structure(netlist)
    tables = _cell_tables(grids, struct["cell_names"])
    if tables is None:
        return None
    npins, caps_tab, d_a, d_b, t_a, t_b = tables

    g_code = struct["g_code"]
    g_out = struct["g_out"]
    g_in = struct["g_in"]
    n_nets = len(struct["names"])
    loads, pin_cap, sink_cnt, t_wire = _vector_loads(
        struct, caps_tab, g_code, library, wire, output_load)

    # -- levelised propagation ------------------------------------------------
    slew_axis = grids["slews"]
    load_axis = grids["loads"]
    max_i = len(slew_axis) - 2
    max_j = len(load_axis) - 2
    DG = grids["delay"]
    TG = grids["trans"]

    arrival = np.zeros(n_nets)
    slew = np.full(n_nets, input_slew)
    n = len(g_code)
    gate_t = np.empty(n)
    gate_best_in = np.empty(n, dtype=np.int32)
    gate_delay_arr = np.empty(n)

    bounds = struct["bounds"]
    n_lookups = 0
    n_levels = 0
    start = 0
    for lv in range(struct["max_level"]):
        stop = int(bounds[lv])
        if stop == start:
            continue
        n_levels += 1
        sl = slice(start, stop)
        start = stop
        code = g_code[sl]
        out = g_out[sl]
        loads_g = loads[out]
        tw = t_wire[out]
        j = np.clip(np.searchsorted(load_axis, loads_g, side="right") - 1,
                    0, max_j)
        l0 = load_axis[j]
        tl = (loads_g - l0) / (load_axis[j + 1] - l0)

        pin_count = npins[code]
        t_rows = []
        s_rows = []
        for p in range(int(pin_count.max())):
            in_p = g_in[sl, p]
            valid = p < pin_count
            iid = np.where(valid, in_p, 0)
            sv = slew[iid]
            av = arrival[iid]
            i = np.clip(np.searchsorted(slew_axis, sv, side="right") - 1,
                        0, max_i)
            s0 = slew_axis[i]
            ts = (sv - s0) / (slew_axis[i + 1] - s0)
            rows_d = np.stack((d_a[code, p], d_b[code, p]))
            d = _bilinear(DG, rows_d, i, j, ts, tl).max(axis=0)
            rows_t = np.stack((t_a[code, p], t_b[code, p]))
            s = _bilinear(TG, rows_t, i, j, ts, tl).max(axis=0)
            t = av + d + tw
            t[~valid] = -1.0             # scalar best_t starts at -1.0
            t_rows.append(t)
            s_rows.append(s)
            # One stacked delay + one stacked transition interpolation
            # per (level, pin) round, covering `stop - sl.start` gates.
            n_lookups += 2 * (stop - sl.start)

        t_stack = np.stack(t_rows)
        best = t_stack.argmax(axis=0)    # first max == strictly-greater scan
        cols = np.arange(stop - (sl.start))
        t_best = t_stack[best, cols]
        arrival[out] = t_best
        slew[out] = np.stack(s_rows)[best, cols]
        best_in = g_in[sl][cols, best]
        gate_best_in[sl] = best_in
        gate_t[sl] = t_best
        gate_delay_arr[sl] = t_best - arrival[best_in]

    if telemetry.ENABLED:
        telemetry.count("sta.runs")
        telemetry.count("sta.vector_runs")
        telemetry.count("sta.gates", n)
        telemetry.count("sta.levels", n_levels)
        telemetry.count("sta.nldm_lookups", n_lookups)

    # Scatter the (level-sorted) per-gate results back to stable
    # topological order for the report and the recorded session.
    order = struct["order"]
    gate_t_u = np.empty(n)
    gate_best_in_u = np.empty(n, dtype=np.int32)
    gate_delay_u = np.empty(n)
    gate_t_u[order] = gate_t
    gate_best_in_u[order] = gate_best_in
    gate_delay_u[order] = gate_delay_arr

    report = _vector_report(netlist, struct, arrival, slew, loads,
                            gate_best_in_u, gate_delay_u)
    if incremental_enabled():
        fp = netlist.fingerprint()
        _record_vector_session(
            netlist, struct,
            _session_key(fp, library, wire, input_slew, output_load), fp,
            loads, pin_cap, sink_cnt, t_wire, arrival, slew,
            gate_t_u, gate_best_in_u, gate_delay_u, report)
    return report


def _vector_incremental(netlist: Netlist, library: Library, wire: WireModel,
                        input_slew: float, output_load: float | None,
                        base: dict, key: tuple,
                        fp: str) -> TimingReport | None:
    """Array-engine delta-retiming from a recorded session.

    The parent's structure encoding is extended in place of a fresh
    pass; net loading is recomputed in full (a few vector ops); then the
    levelised sweep recomputes only dirty gates — per-gate arithmetic is
    elementwise, so a subset computes bitwise the same values it would
    in a full level batch.
    """
    grids = _library_grids(library)
    if grids is None:
        return None
    struct = _extend_vector_structure(netlist, base["struct"])
    if struct is None:
        return None
    tables = _cell_tables(grids, struct["cell_names"])
    if tables is None:
        return None
    npins, caps_tab, d_a, d_b, t_a, t_b = tables

    g_code = struct["g_code"]
    g_out = struct["g_out"]
    g_in = struct["g_in"]
    order = struct["order"]
    n = len(g_code)
    n_base = base["n_gates"]
    n_nets = len(struct["names"])
    n_base_nets = len(base["loads"])

    loads, pin_cap, sink_cnt, t_wire = _vector_loads(
        struct, caps_tab, g_code, library, wire, output_load)

    # Dirty nets: loading changed bitwise vs the recorded session (new
    # nets occupy ids >= n_base_nets and are dirty by construction).
    dirty = np.ones(n_nets, dtype=bool)
    dirty[:n_base_nets] = (
        (loads[:n_base_nets] != base["loads"])
        | (pin_cap[:n_base_nets] != base["pin_cap"])
        | (sink_cnt[:n_base_nets] != base["sink_cnt"]))

    # Per-net timing state, seeded from the session; new slots start at
    # the primary-input boundary condition (correct for new PIs, and
    # overwritten before use for new gate outputs).
    arrival = np.empty(n_nets)
    slew = np.empty(n_nets)
    arrival[:n_base_nets] = base["arrival"]
    slew[:n_base_nets] = base["slew"]
    arrival[n_base_nets:] = 0.0
    slew[n_base_nets:] = input_slew

    gate_t_u = np.empty(n)
    gate_best_in_u = np.empty(n, dtype=np.int32)
    gate_delay_u = np.empty(n)
    gate_t_u[:n_base] = base["gate_t_u"]
    gate_best_in_u[:n_base] = base["gate_best_in_u"]
    gate_delay_u[:n_base] = base["gate_delay_u"]

    changed = np.zeros(n_nets, dtype=bool)
    changed[n_base_nets:] = True
    # A gate re-times when it is new or its output loading changed;
    # input-change propagation is folded in level by level.
    recheck = (order >= n_base) | dirty[g_out]

    slew_axis = grids["slews"]
    load_axis = grids["loads"]
    max_i = len(slew_axis) - 2
    max_j = len(load_axis) - 2
    DG = grids["delay"]
    TG = grids["trans"]
    bounds = struct["bounds"]

    retimed = 0
    start = 0
    for lv in range(struct["max_level"]):
        stop = int(bounds[lv])
        if stop == start:
            continue
        sl = slice(start, stop)
        level_order = order[sl]
        code_l = g_code[sl]
        in_l = g_in[sl]
        pin_count_l = npins[code_l]

        mask = recheck[sl].copy()
        for p in range(int(pin_count_l.max())):
            in_p = in_l[:, p]
            valid = p < pin_count_l
            mask |= valid & changed[np.where(valid, in_p, 0)]
        start = stop
        if not mask.any():
            continue
        idx = np.nonzero(mask)[0]
        retimed += len(idx)

        code = code_l[idx]
        out = g_out[sl][idx]
        loads_g = loads[out]
        tw = t_wire[out]
        j = np.clip(np.searchsorted(load_axis, loads_g, side="right") - 1,
                    0, max_j)
        l0 = load_axis[j]
        tl = (loads_g - l0) / (load_axis[j + 1] - l0)

        pin_count = pin_count_l[idx]
        t_rows = []
        s_rows = []
        for p in range(int(pin_count.max())):
            in_p = in_l[idx, p]
            valid = p < pin_count
            iid = np.where(valid, in_p, 0)
            sv = slew[iid]
            av = arrival[iid]
            i = np.clip(np.searchsorted(slew_axis, sv, side="right") - 1,
                        0, max_i)
            s0 = slew_axis[i]
            ts = (sv - s0) / (slew_axis[i + 1] - s0)
            rows_d = np.stack((d_a[code, p], d_b[code, p]))
            d = _bilinear(DG, rows_d, i, j, ts, tl).max(axis=0)
            rows_t = np.stack((t_a[code, p], t_b[code, p]))
            s = _bilinear(TG, rows_t, i, j, ts, tl).max(axis=0)
            t = av + d + tw
            t[~valid] = -1.0
            t_rows.append(t)
            s_rows.append(s)

        t_stack = np.stack(t_rows)
        best = t_stack.argmax(axis=0)
        cols = np.arange(len(idx))
        t_best = t_stack[best, cols]
        s_best = np.stack(s_rows)[best, cols]
        delta = (arrival[out] != t_best) | (slew[out] != s_best)
        arrival[out] = t_best
        slew[out] = s_best
        changed[out[delta]] = True
        best_in = in_l[idx, best]
        orig = level_order[idx]
        gate_t_u[orig] = t_best
        gate_best_in_u[orig] = best_in
        gate_delay_u[orig] = t_best - arrival[best_in]

    if telemetry.ENABLED:
        telemetry.count("sta.runs")
        telemetry.count("sta.vector_runs")
        telemetry.count("sta.incremental_runs")
        telemetry.count("sta.gates", n)
        telemetry.count("sta.retimed_gates", retimed)

    report = _vector_report(netlist, struct, arrival, slew, loads,
                            gate_best_in_u, gate_delay_u)
    _record_vector_session(netlist, struct, key, fp, loads, pin_cap,
                           sink_cnt, t_wire, arrival, slew, gate_t_u,
                           gate_best_in_u, gate_delay_u, report)
    return report
