"""NLDM static timing analysis with wire parasitics.

A single topological pass computes, per net: arrival time, transition
(slew) and capacitive load.  Gate delays and output slews come from the
characterised library's NLDM tables (bilinear lookup on the propagated
input slew and the computed output load); wire delay adds the Elmore term
of the fanout-based wire model.

This is the repro equivalent of Design Compiler's timing engine for the
minimum-clock-period measurements in Figures 11, 12 and 15.

Two engines compute the same pass:

- a **scalar** gate-at-a-time loop (the reference, used for small
  netlists and whenever the library's tables cannot be batched);
- a **levelised array** engine for large netlists (the multi-thousand
  gate datapath blocks): gates are grouped by logic level and each
  level's delays/slews come from vectorised bilinear interpolation over
  the library's stacked NLDM grids.  Same recurrence, same tie-breaking,
  same interpolation formula — ``tests/synthesis`` asserts the engines
  agree on every generator block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.library import Library
from repro.errors import SynthesisError
from repro.runtime import telemetry
from repro.synthesis.netlist import Gate, Netlist
from repro.synthesis.wires import WireModel

#: Below this gate count the scalar engine wins (array setup dominates).
VECTOR_MIN_GATES = 2000


@dataclass(frozen=True)
class TimingReport:
    """Result of a static timing pass."""

    netlist_name: str
    max_delay: float
    critical_path: tuple[str, ...]          # gate names, input to output
    arrival: dict[str, float] = field(repr=False, default_factory=dict)
    slew: dict[str, float] = field(repr=False, default_factory=dict)
    load: dict[str, float] = field(repr=False, default_factory=dict)
    gate_delay: dict[str, float] = field(repr=False, default_factory=dict)

    @property
    def critical_length(self) -> int:
        return len(self.critical_path)


def _net_loading(netlist: Netlist, library: Library, wire: WireModel,
                 output_load: float | None
                 ) -> tuple[dict[str, float], dict[str, float], dict[str, int]]:
    """Per-net (total load, pin-only load, sink count).

    Total load = sink pin caps + wire cap; primary outputs additionally
    drive *output_load* (default: one inverter input of the next block).
    """
    inv_cin = library.cell("inv").input_caps["a"]
    if output_load is None:
        output_load = inv_cin
    fanout = netlist.fanout_map()
    po_set = set(netlist.primary_outputs)
    loads: dict[str, float] = {}
    pin_loads: dict[str, float] = {}
    sink_counts: dict[str, int] = {}
    for net, sinks in fanout.items():
        pin_cap = 0.0
        for gate, pin_index in sinks:
            cell = library.cell(gate.cell)
            pin_name = cell.inputs[pin_index]
            pin_cap += cell.input_caps[pin_name]
        n_sinks = len(sinks) + (1 if net in po_set else 0)
        if net in po_set:
            pin_cap += output_load
        loads[net] = pin_cap + wire.net_capacitance(max(n_sinks, 1))
        pin_loads[net] = pin_cap
        sink_counts[net] = max(n_sinks, 1)
    return loads, pin_loads, sink_counts


def net_loads(netlist: Netlist, library: Library, wire: WireModel,
              output_load: float | None = None) -> dict[str, float]:
    """Capacitive load of every net (pins + wire + primary-output load)."""
    loads, _, _ = _net_loading(netlist, library, wire, output_load)
    return loads


def static_timing(netlist: Netlist, library: Library, wire: WireModel,
                  input_slew: float | None = None,
                  output_load: float | None = None) -> TimingReport:
    """Arrival-time propagation over the mapped netlist."""
    if not netlist.is_mapped:
        raise SynthesisError(
            f"netlist {netlist.name!r} must be technology-mapped before STA")
    if input_slew is None:
        input_slew = library.typical_slew()

    if len(netlist.gates) >= VECTOR_MIN_GATES:
        report = _vector_static_timing(netlist, library, wire,
                                       input_slew, output_load)
        if report is not None:
            return report

    loads, pin_loads, sink_counts = _net_loading(netlist, library, wire,
                                                 output_load)

    arrival: dict[str, float] = {}
    slew: dict[str, float] = {}
    worst_input: dict[str, str | None] = {}   # gate -> critical fanin net
    gate_delay: dict[str, float] = {}

    for net in netlist.primary_inputs:
        arrival[net] = 0.0
        slew[net] = input_slew

    # The gate loop below is the hot path of every synthesis experiment
    # (tens of thousands of gates for the wide datapath blocks), so cell
    # objects are cached per cell name, dict lookups are hoisted into
    # locals, and the output slew is computed once per gate, for the
    # critical pin only, rather than on every new running maximum.
    cells: dict[str, object] = {}
    elmore = wire.elmore_delay
    for gate in netlist.topological_order():
        cell = cells.get(gate.cell)
        if cell is None:
            cell = cells[gate.cell] = library.cell(gate.cell)
        output = gate.output
        load = loads[output]
        # Wire RC from this gate's output to its sinks (Elmore, shared).
        t_wire = elmore(sink_counts[output], pin_loads[output])

        cell_inputs = cell.inputs
        cell_delay = cell.delay
        best_t = -1.0
        best_net: str | None = None
        best_pin: str | None = None
        for pin_index, net in enumerate(gate.inputs):
            pin_name = cell_inputs[pin_index]
            t = arrival[net] + cell_delay(pin_name, slew[net], load) + t_wire
            if t > best_t:
                best_t = t
                best_net = net
                best_pin = pin_name
        arrival[output] = best_t
        slew[output] = cell.output_slew(best_pin, slew[best_net], load)
        worst_input[gate.name] = best_net
        gate_delay[gate.name] = best_t - arrival[best_net]

    if telemetry.ENABLED:
        topo = netlist.topological_order()
        telemetry.count("sta.runs")
        telemetry.count("sta.scalar_runs")
        telemetry.count("sta.gates", len(topo))
        # One delay lookup per gate input pin plus one output-slew lookup
        # per gate — derived after the fact, so the hot loop stays clean.
        telemetry.count("sta.nldm_lookups",
                        sum(len(g.inputs) for g in topo) + len(topo))

    max_delay = 0.0
    end_net: str | None = None
    for net in netlist.primary_outputs:
        t = arrival.get(net, 0.0)
        if t > max_delay:
            max_delay = t
            end_net = net

    # Backtrace the critical path.
    path: list[str] = []
    net = end_net
    while net is not None:
        driver = netlist.driver_of(net)
        if driver is None:
            break
        path.append(driver.name)
        net = worst_input[driver.name]
    path.reverse()

    return TimingReport(
        netlist_name=netlist.name,
        max_delay=max_delay,
        critical_path=tuple(path),
        arrival=arrival,
        slew=slew,
        load=loads,
        gate_delay=gate_delay,
    )


# ---------------------------------------------------------------------------
# Levelised array engine
# ---------------------------------------------------------------------------

def _library_grids(library: Library) -> dict | None:
    """Stacked NLDM grids of every cell, or None if they cannot be batched.

    Batching requires every arc table of every cell to share the same
    (slew, load) axes — true for any library characterised on one grid —
    and at most two arcs (rise/fall) per input pin.  The result is cached
    on the library object; ``None`` (unsupported) is cached too, sending
    every later call down the scalar engine.
    """
    cached = getattr(library, "_vector_grids", "unset")
    if cached != "unset":
        return cached

    ref_slews = ref_loads = None
    delay_grids: list = []
    trans_grids: list = []
    cells: dict[str, dict] = {}
    supported = True
    for name, cell in library.cells.items():
        info = {"npins": len(cell.inputs), "caps": [], "delay_arcs": [],
                "trans_arcs": []}
        for pin in cell.inputs:
            try:
                arcs = cell.arcs_from(pin)
            except Exception:
                supported = False
                break
            if not 1 <= len(arcs) <= 2:
                supported = False
                break
            for arc in arcs:
                for table in (arc.delay, arc.transition):
                    if ref_slews is None:
                        ref_slews, ref_loads = table.slews, table.loads
                    elif not (np.array_equal(table.slews, ref_slews)
                              and np.array_equal(table.loads, ref_loads)):
                        supported = False
                        break
                if not supported:
                    break
            if not supported:
                break
            da = len(delay_grids)
            delay_grids.append(arcs[0].delay.values)
            ta = len(trans_grids)
            trans_grids.append(arcs[0].transition.values)
            if len(arcs) == 2:
                delay_grids.append(arcs[1].delay.values)
                trans_grids.append(arcs[1].transition.values)
                db, tb = da + 1, ta + 1
            else:
                db, tb = da, ta
            info["caps"].append(cell.input_caps[pin])
            info["delay_arcs"].append((da, db))
            info["trans_arcs"].append((ta, tb))
        if not supported:
            break
        cells[name] = info

    if not supported or ref_slews is None:
        grids = None
    else:
        grids = {
            "slews": np.asarray(ref_slews, dtype=float),
            "loads": np.asarray(ref_loads, dtype=float),
            "delay": np.stack(delay_grids),
            "trans": np.stack(trans_grids),
            "cells": cells,
        }
    object.__setattr__(library, "_vector_grids", grids)
    return grids


def _vector_structure(netlist: Netlist) -> dict:
    """Integer-encoded, level-sorted view of the netlist (cached).

    One Python pass assigns net ids and logic levels; everything else is
    arrays.  The cache is tied to the identity of the topological-order
    list, which :meth:`Netlist.add_gate` invalidates.
    """
    topo = netlist.topological_order()
    cached = getattr(netlist, "_vector_struct", None)
    if cached is not None and cached["topo"] is topo:
        return cached

    net_id: dict[str, int] = {}
    names: list[str] = []
    for net in netlist.primary_inputs:
        net_id[net] = len(names)
        names.append(net)
    n_pi = len(names)

    n = len(topo)
    levels = [0] * n_pi + [0] * n          # per net id
    cell_code: dict[str, int] = {}
    cell_names: list[str] = []
    g_code = np.empty(n, dtype=np.int32)
    g_out = np.empty(n, dtype=np.int32)
    g_in = np.full((n, 3), -1, dtype=np.int32)
    g_level = np.empty(n, dtype=np.int32)
    gate_names: list[str] = []

    for k, gate in enumerate(topo):
        lv = 0
        for p, net in enumerate(gate.inputs):
            i = net_id[net]
            g_in[k, p] = i
            li = levels[i]
            if li > lv:
                lv = li
        code = cell_code.get(gate.cell)
        if code is None:
            code = cell_code[gate.cell] = len(cell_names)
            cell_names.append(gate.cell)
        out = gate.output
        oid = len(names)
        net_id[out] = oid
        names.append(out)
        levels[oid] = lv + 1
        g_code[k] = code
        g_out[k] = oid
        g_level[k] = lv + 1
        gate_names.append(gate.name)

    order = np.argsort(g_level, kind="stable")
    g_code = g_code[order]
    g_out = g_out[order]
    g_in = g_in[order]
    g_level = g_level[order]
    gate_names = [gate_names[i] for i in order]

    max_level = int(g_level[-1]) if n else 0
    # bounds[k] = index one past the last gate of level k+1.
    bounds = np.searchsorted(g_level, np.arange(1, max_level + 1),
                             side="right")

    driver = np.full(len(names), -1, dtype=np.int32)
    driver[g_out] = np.arange(n, dtype=np.int32)

    po_ids = []
    seen = set()
    for net in netlist.primary_outputs:
        i = net_id.get(net)
        if i is not None and i not in seen:
            seen.add(i)
            po_ids.append(i)

    struct = {
        "topo": topo,
        "names": names,
        "n_pi": n_pi,
        "cell_names": cell_names,
        "g_code": g_code,
        "g_out": g_out,
        "g_in": g_in,
        "bounds": bounds,
        "max_level": max_level,
        "gate_names": gate_names,
        "driver": driver,
        "po_ids": np.asarray(po_ids, dtype=np.int32),
    }
    netlist._vector_struct = struct
    return struct


def _vector_static_timing(netlist: Netlist, library: Library,
                          wire: WireModel, input_slew: float,
                          output_load: float | None) -> TimingReport | None:
    """The levelised array engine; None if this library can't be batched.

    Arithmetic mirrors the scalar engine expression for expression
    (same bilinear form, same strictly-greater pin tie-breaking via
    first-maximum argmax), so the engines agree to float rounding.
    """
    grids = _library_grids(library)
    if grids is None:
        return None
    struct = _vector_structure(netlist)
    cells = grids["cells"]
    try:
        infos = [cells[name] for name in struct["cell_names"]]
    except KeyError:
        return None                      # scalar path raises LibraryError

    ncells = len(infos)
    npins = np.array([info["npins"] for info in infos], dtype=np.int32)
    caps_tab = np.zeros((ncells, 3))
    d_a = np.zeros((ncells, 3), dtype=np.int32)
    d_b = np.zeros((ncells, 3), dtype=np.int32)
    t_a = np.zeros((ncells, 3), dtype=np.int32)
    t_b = np.zeros((ncells, 3), dtype=np.int32)
    for c, info in enumerate(infos):
        for p in range(info["npins"]):
            caps_tab[c, p] = info["caps"][p]
            d_a[c, p], d_b[c, p] = info["delay_arcs"][p]
            t_a[c, p], t_b[c, p] = info["trans_arcs"][p]

    g_code = struct["g_code"]
    g_out = struct["g_out"]
    g_in = struct["g_in"]
    n_nets = len(struct["names"])

    # -- per-net loading (vector form of _net_loading) ------------------------
    if output_load is None:
        output_load = library.cell("inv").input_caps["a"]
    pin_cap = np.zeros(n_nets)
    sink_cnt = np.zeros(n_nets, dtype=np.int64)
    for p in range(3):
        col = g_in[:, p]
        valid = col >= 0
        if not valid.any():
            continue
        ids = col[valid]
        pin_cap += np.bincount(ids, weights=caps_tab[g_code[valid], p],
                               minlength=n_nets)
        sink_cnt += np.bincount(ids, minlength=n_nets)
    po_ids = struct["po_ids"]
    pin_cap[po_ids] += output_load
    sink_cnt[po_ids] += 1

    fo = np.maximum(sink_cnt, 1)
    length = wire.pitch * (wire.base_spans + wire.span_per_fanout * fo)
    loads = pin_cap + wire.c_per_m * length
    wire_r = wire.r_per_m * length
    wire_c = wire.c_per_m * length
    t_wire = wire_r * (0.5 * wire_c + pin_cap)

    # -- levelised propagation ------------------------------------------------
    slew_axis = grids["slews"]
    load_axis = grids["loads"]
    max_i = len(slew_axis) - 2
    max_j = len(load_axis) - 2
    DG = grids["delay"]
    TG = grids["trans"]

    arrival = np.zeros(n_nets)
    slew = np.full(n_nets, input_slew)
    n = len(g_code)
    gate_t = np.empty(n)
    gate_best_in = np.empty(n, dtype=np.int32)
    gate_delay_arr = np.empty(n)

    def _bilinear(G, rows, i, j, ts, tl):
        v00 = G[rows, i, j]
        v01 = G[rows, i, j + 1]
        v10 = G[rows, i + 1, j]
        v11 = G[rows, i + 1, j + 1]
        return ((1 - ts) * (v00 + tl * (v01 - v00))
                + ts * (v10 + tl * (v11 - v10)))

    bounds = struct["bounds"]
    n_lookups = 0
    n_levels = 0
    start = 0
    for lv in range(struct["max_level"]):
        stop = int(bounds[lv])
        if stop == start:
            continue
        n_levels += 1
        sl = slice(start, stop)
        start = stop
        code = g_code[sl]
        out = g_out[sl]
        loads_g = loads[out]
        tw = t_wire[out]
        j = np.clip(np.searchsorted(load_axis, loads_g, side="right") - 1,
                    0, max_j)
        l0 = load_axis[j]
        tl = (loads_g - l0) / (load_axis[j + 1] - l0)

        pin_count = npins[code]
        t_rows = []
        s_rows = []
        for p in range(int(pin_count.max())):
            in_p = g_in[sl, p]
            valid = p < pin_count
            iid = np.where(valid, in_p, 0)
            sv = slew[iid]
            av = arrival[iid]
            i = np.clip(np.searchsorted(slew_axis, sv, side="right") - 1,
                        0, max_i)
            s0 = slew_axis[i]
            ts = (sv - s0) / (slew_axis[i + 1] - s0)
            rows_d = np.stack((d_a[code, p], d_b[code, p]))
            d = _bilinear(DG, rows_d, i, j, ts, tl).max(axis=0)
            rows_t = np.stack((t_a[code, p], t_b[code, p]))
            s = _bilinear(TG, rows_t, i, j, ts, tl).max(axis=0)
            t = av + d + tw
            t[~valid] = -1.0             # scalar best_t starts at -1.0
            t_rows.append(t)
            s_rows.append(s)
            # One stacked delay + one stacked transition interpolation
            # per (level, pin) round, covering `stop - sl.start` gates.
            n_lookups += 2 * (stop - sl.start)

        t_stack = np.stack(t_rows)
        best = t_stack.argmax(axis=0)    # first max == strictly-greater scan
        cols = np.arange(stop - (sl.start))
        t_best = t_stack[best, cols]
        arrival[out] = t_best
        slew[out] = np.stack(s_rows)[best, cols]
        best_in = g_in[sl][cols, best]
        gate_best_in[sl] = best_in
        gate_t[sl] = t_best
        gate_delay_arr[sl] = t_best - arrival[best_in]

    if telemetry.ENABLED:
        telemetry.count("sta.runs")
        telemetry.count("sta.vector_runs")
        telemetry.count("sta.gates", n)
        telemetry.count("sta.levels", n_levels)
        telemetry.count("sta.nldm_lookups", n_lookups)

    # -- report ---------------------------------------------------------------
    names = struct["names"]
    max_delay = 0.0
    end_id = -1
    for i in struct["po_ids"]:
        t = float(arrival[i])
        if t > max_delay:
            max_delay = t
            end_id = int(i)

    driver = struct["driver"]
    gate_names = struct["gate_names"]
    path: list[str] = []
    net = end_id
    while net >= 0:
        g = int(driver[net])
        if g < 0:
            break
        path.append(gate_names[g])
        net = int(gate_best_in[g])
    path.reverse()

    arrival_map = dict(zip(names, arrival.tolist()))
    # The scalar engine only records arrival/slew for primary inputs and
    # gate outputs it visited; the arrays cover exactly the same nets.
    return TimingReport(
        netlist_name=netlist.name,
        max_delay=max_delay,
        critical_path=tuple(path),
        arrival=arrival_map,
        slew=dict(zip(names, slew.tolist())),
        load=dict(zip(names, loads.tolist())),
        gate_delay=dict(zip(gate_names, gate_delay_arr.tolist())),
    )
