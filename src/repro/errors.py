"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: circuit simulation, device modelling, characterisation, synthesis,
and architecture modelling each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """Malformed circuit description (unknown node, duplicate element...)."""


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge.

    ``context`` carries the task that was being solved when the failure
    happened (cell name, arc, bias point...).  Layers that know more than
    the solver attach their keys with :meth:`with_context` as the exception
    propagates, so a failure reported from a parallel worker still names
    the circuit and bias that caused it.

    ``events`` is a structured trail of what the solver tried before
    giving up: each entry is a dict with a ``stage`` key (``"newton"``,
    ``"gmin"``, ``"source"``, ...) plus stage-specific detail —
    iteration count, the last gmin or source-step fraction reached, the
    worst-residual node.  The trail is appended with :meth:`add_event`
    as the fallback chain unwinds and rendered into :meth:`__str__`, so
    a bare traceback already tells the whole convergence story.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None,
                 context: dict | None = None,
                 events: list | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.iterations = iterations
        self.residual = residual
        self.context = dict(context) if context else {}
        self.events = [dict(e) for e in events] if events else []

    def with_context(self, **kwargs) -> "ConvergenceError":
        """Attach caller-level context keys (existing keys win)."""
        for key, value in kwargs.items():
            self.context.setdefault(key, value)
        return self

    def add_event(self, stage: str, **detail) -> "ConvergenceError":
        """Append one structured trail entry (oldest first)."""
        self.events.append({"stage": stage, **detail})
        return self

    @staticmethod
    def _format_event(event: dict) -> str:
        detail = ", ".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in event.items() if k != "stage")
        return f"{event.get('stage', '?')}({detail})" if detail \
            else str(event.get("stage", "?"))

    def __str__(self) -> str:
        parts = [self.message]
        if self.events:
            trail = " -> ".join(self._format_event(e) for e in self.events)
            parts.append(f"[trail: {trail}]")
        if self.context:
            detail = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
            parts.append(f"[{detail}]")
        return " ".join(parts)

    def __reduce__(self):
        # Keyword-only constructor args: the default Exception reduction
        # would drop them, so spell the reconstruction out.  This is what
        # lets the error cross a process-pool boundary intact.
        return (_rebuild_convergence_error,
                (self.message, self.iterations, self.residual, self.context,
                 self.events))


def _rebuild_convergence_error(message, iterations, residual, context,
                               events=None):
    return ConvergenceError(message, iterations=iterations,
                            residual=residual, context=context,
                            events=events)


class AnalysisError(ReproError):
    """A post-processing measurement could not be computed."""


class DeviceModelError(ReproError):
    """Invalid device-model parameters or evaluation failure."""


class ExtractionError(ReproError):
    """Parameter extraction from measured curves failed."""


class CharacterizationError(ReproError):
    """Standard-cell characterisation failed."""


class LibraryError(ReproError):
    """A timing library is malformed or missing a requested cell/arc."""


class SynthesisError(ReproError):
    """Gate-level netlist construction, mapping or timing failure."""


class PipelineError(SynthesisError):
    """Pipeline cutting / retiming failure."""


class ConfigError(ReproError):
    """Invalid architectural configuration."""


class SimulationError(ReproError):
    """The microarchitectural simulator reached an inconsistent state."""
