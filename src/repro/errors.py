"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: circuit simulation, device modelling, characterisation, synthesis,
and architecture modelling each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """Malformed circuit description (unknown node, duplicate element...)."""


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class AnalysisError(ReproError):
    """A post-processing measurement could not be computed."""


class DeviceModelError(ReproError):
    """Invalid device-model parameters or evaluation failure."""


class ExtractionError(ReproError):
    """Parameter extraction from measured curves failed."""


class CharacterizationError(ReproError):
    """Standard-cell characterisation failed."""


class LibraryError(ReproError):
    """A timing library is malformed or missing a requested cell/arc."""


class SynthesisError(ReproError):
    """Gate-level netlist construction, mapping or timing failure."""


class PipelineError(SynthesisError):
    """Pipeline cutting / retiming failure."""


class ConfigError(ReproError):
    """Invalid architectural configuration."""


class SimulationError(ReproError):
    """The microarchitectural simulator reached an inconsistent state."""
