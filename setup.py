"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists so `pip install -e .`
works on environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import setup

setup()
